//! Byte-identity of artifacts under the live observability plane.
//!
//! The plane's contract is "observe, never perturb": enabling `--live`
//! (worker events, streamed deltas, the HTTP endpoints) must leave every
//! byte-stable artifact — the arena matrix and the quickstart telemetry
//! JSONL — identical to a run without it. These tests pin that contract
//! at the library level; the CI smoke job pins it again end-to-end by
//! running `grinch-arena run --live ... --check` against the committed
//! baseline.

use std::time::Duration;

use gift_cipher::Key;
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch_arena::{run_campaign, run_campaign_observed, CampaignConfig, LiveOptions, LivePlane};
use grinch_telemetry::{StreamingSink, Telemetry};

/// The full preset's whole grid (4 defenses x 2 attacks x 2 noise
/// levels) at a test-sized trial budget.
fn full_grid_config() -> CampaignConfig {
    let mut cfg = CampaignConfig::full();
    cfg.trials = 1;
    cfg.max_stage_encryptions = 1_500;
    cfg
}

#[test]
fn full_grid_matrix_is_byte_identical_under_the_live_plane() {
    let cfg = full_grid_config();
    let plain = run_campaign(&cfg).to_json();

    let mut opts = LiveOptions::new("127.0.0.1:0", "identity full");
    opts.stream_interval = Duration::ZERO; // stream every event
    let mut plane = LivePlane::start(&cfg, opts).expect("live plane");
    let sender = plane.sender();
    let live = run_campaign_observed(&cfg, Some(&sender)).to_json();
    drop(sender);
    plane.finish();

    assert_eq!(plain, live, "--live must not change a single matrix byte");
    let state = plane.state();
    let state = state.lock().unwrap();
    assert_eq!(state.progress.cells_completed, cfg.num_cells() as u64);
    assert_eq!(
        state.progress.trials_completed,
        (cfg.num_cells() * cfg.trials) as u64
    );
    assert!(
        state.metrics.seq.is_some(),
        "deltas streamed during the sweep"
    );
    assert_eq!(
        state.metrics.counters["arena.cells.completed"],
        cfg.num_cells() as u64
    );
}

/// One deterministic quickstart-shaped workload (the ideal-setting full
/// key recovery) recorded into `tel`.
fn quickstart_workload(tel: &Telemetry) {
    let secret = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
    oracle.set_telemetry(tel.clone());
    let outcome = recover_full_key(&mut oracle, &AttackConfig::default());
    assert_eq!(outcome.key, Some(secret), "ideal recovery must succeed");
}

#[test]
fn quickstart_jsonl_is_byte_identical_with_streaming_taps() {
    let plain = {
        let tel = Telemetry::new();
        quickstart_workload(&tel);
        quickstart_workload(&tel);
        tel.to_jsonl()
    };

    let streamed = {
        let tel = Telemetry::new();
        let (mut sink, rx) = StreamingSink::channel(Duration::ZERO);
        sink.tick(&tel);
        quickstart_workload(&tel);
        sink.tick(&tel); // mid-workload tap, full attack state in flight
        quickstart_workload(&tel);
        sink.flush(&tel);
        drop(sink);
        let deltas: Vec<_> = rx.iter().collect();
        assert!(deltas.len() >= 2, "taps actually emitted deltas");
        tel.to_jsonl()
    };

    assert_eq!(
        plain, streamed,
        "streaming tap must not perturb the JSONL export"
    );
}
