//! Baseline cache-attack classes, for comparison with GRINCH.
//!
//! The paper's introduction distinguishes three classes of logical cache
//! attacks: **time-driven** (observe total execution time, Bernstein-style),
//! **access-driven** (observe which lines were touched — GRINCH's class),
//! and **trace-driven** (observe the hit/miss sequence of the victim's own
//! accesses). This module implements the two non-GRINCH classes against the
//! same table-driven GIFT victim, quantifying *why* the access-driven
//! attack is the effective one for GIFT:
//!
//! * [`time_driven`]: with a 16-entry S-box, every encryption touches
//!   (essentially) the whole table, so total time carries almost no
//!   key-dependent component — the classical timing attack starves.
//! * [`trace_driven`]: the hit/miss sequence of one round reveals the
//!   *collision pattern* of its S-box indices (access `i` hits iff its
//!   index appeared among accesses `0..i`). That is real leakage — but it
//!   only constrains key bits through equalities between segments, far
//!   weaker per encryption than GRINCH's pinned-index channel.

use cache_sim::{CacheConfig, MemoryHierarchy};
use gift_cipher::{Key, MemoryObserver, TableGift64, TableLayout};

/// The time-driven observation: total latency of one encryption through a
/// timed memory hierarchy (cold cache per call, as a remote attacker
/// triggering one encryption would see).
pub mod time_driven {
    use super::*;

    /// Observer that routes cipher reads through a timed hierarchy.
    struct TimedObserver<'a> {
        mem: &'a mut MemoryHierarchy,
        total_ns: u64,
    }

    impl MemoryObserver for TimedObserver<'_> {
        fn on_read(&mut self, access: gift_cipher::observer::Access) {
            self.total_ns += self.mem.timed_read(access.addr);
        }
    }

    /// Total memory latency of one cold-cache encryption of `plaintext`.
    pub fn encryption_latency(key: Key, plaintext: u64) -> u64 {
        let layout = TableLayout::default();
        let cipher = TableGift64::new(key, layout);
        let mut mem = MemoryHierarchy::new(CacheConfig::grinch_default(), 80);
        let mut obs = TimedObserver {
            mem: &mut mem,
            total_ns: 0,
        };
        cipher.encrypt_with(plaintext, &mut obs);
        obs.total_ns
    }

    /// The spread (max − min) of encryption latencies over `samples`
    /// plaintexts, normalised by the mean — the signal a Bernstein-style
    /// attack needs to correlate against key hypotheses.
    pub fn relative_latency_spread(key: Key, samples: u64) -> f64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        for i in 0..samples {
            let pt = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let t = encryption_latency(key, pt);
            min = min.min(t);
            max = max.max(t);
            sum += t;
        }
        let mean = sum as f64 / samples as f64;
        (max - min) as f64 / mean
    }
}

/// The trace-driven observation: the hit/miss pattern of the victim's own
/// S-box accesses within one round.
pub mod trace_driven {
    use super::*;
    use cache_sim::{Cache, CacheObserver};
    use gift_cipher::state::segment_64;
    use gift_cipher::Gift64;

    /// The hit/miss sequence of round `round` (1-based) of an encryption,
    /// starting from a flushed cache — the trace-driven channel.
    pub fn round_trace(key: Key, plaintext: u64, round: usize) -> Vec<bool> {
        let layout = TableLayout::default();
        let cipher = TableGift64::new(key, layout);
        let mut cache = Cache::new(CacheConfig::grinch_default());
        let mut state = plaintext;
        for r in 0..round {
            if r == round - 1 {
                cache.flush_all();
                // Record hits/misses of this round only.
                struct TraceObs<'a> {
                    cache: &'a mut Cache,
                    hits: Vec<bool>,
                }
                impl MemoryObserver for TraceObs<'_> {
                    fn on_read(&mut self, access: gift_cipher::observer::Access) {
                        self.hits.push(self.cache.access(access.addr).is_hit());
                    }
                }
                let mut obs = TraceObs {
                    cache: &mut cache,
                    hits: Vec::new(),
                };
                cipher.run_single_round(state, r, &mut obs);
                return obs.hits;
            }
            let mut obs = CacheObserver::new(&mut cache);
            state = cipher.run_single_round(state, r, &mut obs);
        }
        unreachable!("round must be >= 1");
    }

    /// The *collision partition* a trace reveals: `partition[i]` is the
    /// index of the earliest segment whose S-box index equals segment
    /// `i`'s (with one-word lines, access `i` hits exactly when its index
    /// already occurred).
    ///
    /// This is the complete information content of a one-round trace — an
    /// equality pattern over the 16 secret indices, never their values.
    pub fn collision_partition(
        trace: &[bool],
        key: Key,
        plaintext: u64,
        round: usize,
    ) -> Vec<usize> {
        // Derive ground truth to label the partition (a real attacker
        // reconstructs the same partition incrementally from hits alone;
        // we verify that claim in tests).
        let reference = Gift64::new(key);
        let input = reference.encrypt_rounds(plaintext, round - 1);
        let mut first_of_value = [usize::MAX; 16];
        let mut partition = Vec::with_capacity(16);
        for (i, &hit) in trace.iter().enumerate().take(16) {
            let v = segment_64(input, i) as usize;
            if first_of_value[v] == usize::MAX {
                first_of_value[v] = i;
                debug_assert!(!hit, "first occurrence must miss");
            } else {
                debug_assert!(hit, "repeat must hit");
            }
            partition.push(first_of_value[v]);
        }
        partition
    }

    /// Shannon entropy (bits) of the distribution of a round's collision
    /// partitions over `samples` random plaintexts — an upper bound on the
    /// per-encryption information the trace-driven channel carries.
    pub fn partition_entropy_bits(key: Key, round: usize, samples: u64) -> f64 {
        // BTreeMap, not HashMap: the float sum below is evaluated in
        // iteration order, and hash order would make the low bits of the
        // entropy differ across processes.
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<Vec<usize>, u64> = BTreeMap::new();
        for i in 0..samples {
            let pt = i.wrapping_mul(0x517c_c1b7_2722_0a95) ^ 0x1234;
            let trace = round_trace(key, pt, round);
            let partition = collision_partition(&trace, key, pt, round);
            *counts.entry(partition).or_default() += 1;
        }
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / samples as f64;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0)
    }

    #[test]
    fn time_driven_signal_is_tiny_for_gift() {
        // The 16-entry table gets (essentially) fully cached within the
        // first rounds; after that everything hits, so total latency is
        // nearly constant: the Bernstein channel carries almost nothing.
        let spread = time_driven::relative_latency_spread(key(), 64);
        assert!(
            spread < 0.05,
            "GIFT's tiny S-box should flatten timing: spread {spread}"
        );
    }

    #[test]
    fn time_driven_latency_is_key_insensitive() {
        let pt = 0x0123_4567_89ab_cdef;
        let a = time_driven::encryption_latency(Key::from_u128(1), pt);
        let b = time_driven::encryption_latency(Key::from_u128(2), pt);
        let rel = (a as f64 - b as f64).abs() / a as f64;
        assert!(rel < 0.05, "keys should be near-indistinguishable: {rel}");
    }

    #[test]
    fn trace_has_sixteen_events_and_first_access_misses() {
        let trace = trace_driven::round_trace(key(), 42, 2);
        assert_eq!(trace.len(), 16);
        assert!(!trace[0], "first access of a flushed round must miss");
    }

    #[test]
    fn trace_miss_count_equals_distinct_indices() {
        use gift_cipher::state::segment_64;
        use gift_cipher::Gift64;
        let pt = 0xdead_beef_1234_5678;
        for round in 1..=3 {
            let trace = trace_driven::round_trace(key(), pt, round);
            let input = Gift64::new(key()).encrypt_rounds(pt, round - 1);
            let mut distinct: Vec<u8> = (0..16).map(|s| segment_64(input, s)).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let misses = trace.iter().filter(|&&h| !h).count();
            assert_eq!(misses, distinct.len(), "round {round}");
        }
    }

    #[test]
    fn partition_is_consistent_with_trace() {
        let pt = 0x1111_2222_3333_4444;
        let trace = trace_driven::round_trace(key(), pt, 2);
        let partition = trace_driven::collision_partition(&trace, key(), pt, 2);
        assert_eq!(partition.len(), 16);
        // Segment i's representative is at most i, and exactly i iff the
        // access missed (first occurrence).
        for (i, &rep) in partition.iter().enumerate() {
            assert!(rep <= i);
            assert_eq!(rep == i, !trace[i]);
        }
    }

    #[test]
    fn trace_channel_carries_less_information_than_grinch_needs() {
        // GRINCH pins 8 key bits per crafted encryption (one batch). The
        // trace partition over random plaintexts carries some entropy, but
        // it is entropy about index *collisions*, not index values: verify
        // that two different keys can produce identical partitions for the
        // same plaintext (the channel cannot separate them).
        let pt = 0x5555_aaaa_5555_aaaa;
        let k1 = Key::from_u128(3);
        // A key differing only in round-2+ material produces the same
        // round-1 trace.
        let k2 = Key::from_u128(3 | (1 << 127));
        let t1 = trace_driven::round_trace(k1, pt, 1);
        let t2 = trace_driven::round_trace(k2, pt, 1);
        assert_eq!(t1, t2, "round-1 traces are key-independent");
    }

    #[test]
    fn partition_entropy_is_bounded() {
        let bits = trace_driven::partition_entropy_bits(key(), 2, 128);
        // The Bell number B(16) bounds the partition space, but with 16
        // near-uniform indices the observed entropy over 128 samples is a
        // few bits — far below the 32 bits per round GRINCH extracts.
        assert!(bits > 0.5, "channel should carry some information: {bits}");
        assert!(bits < 10.0, "entropy estimate out of range: {bits}");
    }
}
