//! Closed-form effort model for GRINCH campaigns.
//!
//! The elimination step waits for *absence events*: a wrong hypothesis is
//! discarded when its predicted cache line is missed by every access in the
//! observation window. With `a` effectively-random accesses per observation
//! and a line covering `w` of the 16 S-box entries, a given line is absent
//! with probability
//!
//! ```text
//! p_absent(w, a) = (1 − w/16)^a
//! ```
//!
//! The window for probing round `k` contains the 16 crafted/noise accesses
//! of the signal round plus `16·(k − 1)` accesses from deeper rounds (plus
//! 16 more without flush). Eliminating the rival hypotheses of a batch is
//! then a coupon-collector over geometric waiting times; the expected
//! number of encryptions for a batch with `m` pending eliminations is
//! approximately `H(m) / p_absent` (harmonic-number-weighted), and a stage
//! is four consecutive batches.
//!
//! The model is deliberately simple — its purpose is to explain the *shape*
//! of Fig. 3 (exponential in `k`) and Table I (explosive in `w`), and tests
//! check it against the measured simulator within generous factors.

/// Probability that a line covering `entries_per_line` S-box entries is
/// absent from an observation window of `accesses` near-uniform accesses.
///
/// # Panics
///
/// Panics if `entries_per_line` is 0 or greater than 16.
pub fn absence_probability(entries_per_line: usize, accesses: usize) -> f64 {
    assert!(
        (1..=16).contains(&entries_per_line),
        "a line covers 1..=16 S-box entries"
    );
    (1.0 - entries_per_line as f64 / 16.0).powi(accesses as i32)
}

/// Number of accesses in the observation window of probing round
/// `probing_round`, with or without the flush after the attacked round.
pub fn window_accesses(probing_round: usize, flush: bool) -> usize {
    let rounds = if flush {
        probing_round
    } else {
        probing_round + 1
    };
    16 * rounds
}

/// `n`-th harmonic number.
fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Expected encryptions for one full 32-bit stage (four batches, three
/// rival hypotheses per segment, four segments per batch) at the given
/// probing round, flush setting and line coverage.
///
/// Returns `f64::INFINITY` when a rival's line can never be absent
/// (`entries_per_line == 16`, the wide-line countermeasure).
pub fn expected_stage_encryptions(
    probing_round: usize,
    flush: bool,
    entries_per_line: usize,
) -> f64 {
    if entries_per_line >= 16 {
        return f64::INFINITY;
    }
    let accesses = window_accesses(probing_round, flush);
    // The signal access itself always hits its own line; rivals wait on the
    // remaining accesses missing theirs.
    let p = absence_probability(entries_per_line, accesses.saturating_sub(1));
    if p <= 0.0 {
        return f64::INFINITY;
    }
    // Per batch: four segments, three rivals each → up to 12 pending
    // eliminations sharing every observation.
    let per_batch = harmonic(12) / p;
    4.0 * per_batch
}

/// The model's Fig. 3 growth factor between two probing rounds: the ratio
/// of expected stage costs.
pub fn growth_factor(from_round: usize, to_round: usize, flush: bool) -> f64 {
    expected_stage_encryptions(to_round, flush, 1)
        / expected_stage_encryptions(from_round, flush, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ObservationConfig, VictimOracle};
    use crate::stage::{run_stage, StageConfig};
    use gift_cipher::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn absence_probability_boundaries() {
        assert_eq!(absence_probability(16, 1), 0.0);
        assert!((absence_probability(1, 0) - 1.0).abs() < 1e-12);
        let p = absence_probability(1, 15);
        assert!((p - (15.0f64 / 16.0).powi(15)).abs() < 1e-12);
    }

    #[test]
    fn window_accounting_matches_convention() {
        assert_eq!(window_accesses(1, true), 16); // round 2 only
        assert_eq!(window_accesses(1, false), 32); // rounds 1..=2
        assert_eq!(window_accesses(5, true), 80); // rounds 2..=6
    }

    #[test]
    fn model_is_monotone_in_probing_round_and_line_width() {
        for k in 1..9 {
            assert!(
                expected_stage_encryptions(k + 1, true, 1) > expected_stage_encryptions(k, true, 1)
            );
        }
        for w in 1..8 {
            assert!(
                expected_stage_encryptions(1, true, w + 1) > expected_stage_encryptions(1, true, w)
            );
        }
        assert!(expected_stage_encryptions(1, true, 16).is_infinite());
    }

    #[test]
    fn flush_is_cheaper_in_the_model() {
        for k in 1..6 {
            assert!(
                expected_stage_encryptions(k, false, 1) > expected_stage_encryptions(k, true, 1)
            );
        }
    }

    #[test]
    fn model_tracks_measurement_within_an_order_of_magnitude() {
        let key = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
        for (k, flush) in [(1usize, true), (2, true), (1, false)] {
            let predicted = expected_stage_encryptions(k, flush, 1);
            let obs = ObservationConfig::ideal()
                .with_probing_round(k)
                .with_flush(flush);
            let mut oracle = VictimOracle::new(key, obs);
            let mut rng = StdRng::seed_from_u64(77);
            let result = run_stage(
                &mut oracle,
                &[],
                1,
                &StageConfig::new().with_max_encryptions(200_000),
                &mut rng,
            );
            assert!(result.is_resolved(), "k={k} flush={flush}");
            let measured = result.encryptions as f64;
            let ratio = measured / predicted;
            assert!(
                (0.1..10.0).contains(&ratio),
                "k={k} flush={flush}: predicted {predicted:.0}, measured {measured}, ratio {ratio:.2}"
            );
        }
    }
}
