//! Full-stack attack: GRINCH driven end-to-end by the MPSoC co-simulation.
//!
//! The other attack paths in this crate use the idealised observation
//! harness (matching the paper's RTL-simulation experiments 1–2). This
//! module instead runs every crafted encryption through the *event-driven
//! platform simulator*: the victim executes on its tile, the attacker's
//! tile runs continuous Flush+Reload passes over the NoC, and the
//! observation is assembled from the probe records the platform actually
//! produced — timing, scheduling and all (the paper's experiment 3 setup,
//! carried through to key recovery).
//!
//! Observation assembly: the attacker's passes flush what they read, so a
//! pass carries the lines touched since the previous pass. The union of
//! the passes that complete during victim round `r + 1`, plus the first
//! pass of round `r + 2` (covering the tail of round `r + 1`), is a sound
//! superset of round `r + 1`'s access set: every line the signal round
//! touched appears, and extra lines only ever *add* presence — absence
//! remains proof of innocence, so candidate elimination stays sound.

use crate::eliminate::CandidateSet;
use crate::target::{disjoint_batches, TargetSpec};
use gift_cipher::key_schedule::RoundKey64;
use gift_cipher::{Key, GIFT64_SEGMENTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_sim::platform::PlatformConfig;
use soc_sim::scenario::{run_mpsoc_with, ScenarioReport};
use std::collections::BTreeSet;

/// Assembles the attacker's view of round `signal_round`'s accesses from a
/// platform run's probe records (see the module docs for soundness).
pub fn observed_lines_for_round(report: &ScenarioReport, signal_round: usize) -> BTreeSet<u64> {
    let mut observed = BTreeSet::new();
    let mut first_of_next_taken = false;
    for probe in &report.probes {
        match probe.victim_round {
            Some(r) if r == signal_round => {
                observed.extend(probe.hit_lines.iter().copied());
            }
            Some(r) if r == signal_round + 1 && !first_of_next_taken => {
                observed.extend(probe.hit_lines.iter().copied());
                first_of_next_taken = true;
            }
            _ => {}
        }
    }
    observed
}

/// The outcome of a platform-driven stage-1 recovery.
#[derive(Clone, Debug)]
pub struct PlatformStageOutcome {
    /// The recovered first-round key, if every segment resolved.
    pub round_key: Option<RoundKey64>,
    /// Victim encryptions simulated (each is a full platform run).
    pub encryptions: u64,
}

/// Recovers round 1's 32 key bits with every observation produced by a
/// real MPSoC co-simulation run.
///
/// Each crafted plaintext triggers one simulated encryption on the
/// platform (`config`); the attacker tile's probe passes are folded into a
/// round-2 observation and fed to the standard elimination.
pub fn recover_round1_on_mpsoc(
    config: &PlatformConfig,
    key: Key,
    max_encryptions: u64,
    seed: u64,
) -> PlatformStageOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: [CandidateSet; GIFT64_SEGMENTS] =
        core::array::from_fn(|_| CandidateSet::full());
    let mut encryptions = 0u64;
    let layout = config.layout;
    let line_bytes = config.cache.line_bytes as u64;

    'batches: for batch in disjoint_batches(1) {
        let mut stall_limit = 24u64;
        loop {
            for rotation in 0..16usize {
                if batch.iter().all(|&s| candidates[s].is_resolved()) {
                    break;
                }
                let specs: Vec<TargetSpec> = batch
                    .iter()
                    .map(|&s| {
                        let pattern = if rotation == 0 {
                            0b1111
                        } else {
                            rng.gen_range(0..16u8)
                        };
                        TargetSpec::with_forced_pattern(1, s, pattern)
                    })
                    .collect();
                let mut stall = 0u64;
                while stall < stall_limit {
                    if encryptions >= max_encryptions {
                        break 'batches;
                    }
                    if batch.iter().all(|&s| candidates[s].is_resolved()) {
                        break;
                    }
                    let pt = crate::craft::craft_plaintext(&specs, &[], &mut rng)
                        .expect("disjoint batch");
                    encryptions += 1;
                    // One full platform co-simulation for this encryption.
                    let report = run_mpsoc_with(config, key, vec![pt]);
                    let observed = observed_lines_for_round(&report, 2);
                    let mut progressed = 0usize;
                    for spec in &specs {
                        let set = &mut candidates[spec.segment];
                        let before = set.len();
                        let survivors: Vec<(bool, bool)> = set
                            .survivors()
                            .iter()
                            .copied()
                            .filter(|&(v, u)| {
                                let idx = spec.expected_index(v, u);
                                let addr = layout.sbox_entry_addr(idx);
                                observed.contains(&(addr / line_bytes * line_bytes))
                            })
                            .collect();
                        for hyp in [(false, false), (true, false), (false, true), (true, true)] {
                            if !survivors.contains(&hyp) {
                                set.remove(hyp);
                            }
                        }
                        progressed += before - set.len();
                        if set.is_empty() {
                            break 'batches;
                        }
                    }
                    if progressed == 0 {
                        stall += 1;
                    } else {
                        stall = 0;
                    }
                }
            }
            if batch.iter().all(|&s| candidates[s].is_resolved()) {
                break;
            }
            stall_limit = stall_limit.saturating_mul(8);
        }
    }

    let round_key = candidates.iter().all(CandidateSet::is_resolved).then(|| {
        let mut v = 0u16;
        let mut u = 0u16;
        for (s, set) in candidates.iter().enumerate() {
            let (vb, ub) = set.resolved().expect("resolved");
            v |= u16::from(vb) << s;
            u |= u16::from(ub) << s;
        }
        RoundKey64 { u, v }
    });
    PlatformStageOutcome {
        round_key,
        encryptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gift_cipher::Gift64;

    #[test]
    fn observation_assembly_is_a_sound_superset_of_round2() {
        let key = Key::from_u128(0x1357_9bdf_2468_ace0_0f1e_2d3c_4b5a_6978);
        let config = PlatformConfig::mpsoc(10_000_000);
        let pt = 0x0123_4567_89ab_cdef;
        let report = run_mpsoc_with(&config, key, vec![pt]);
        let observed = observed_lines_for_round(&report, 2);
        // Ground truth round-2 lines.
        let round2_input = Gift64::new(key).encrypt_rounds(pt, 1);
        for seg in 0..16 {
            let nib = gift_cipher::state::segment_64(round2_input, seg);
            let addr = config.layout.sbox_entry_addr(nib);
            assert!(
                observed.contains(&addr),
                "round-2 access {addr:#x} missing from the assembled observation"
            );
        }
    }

    #[test]
    fn full_stack_round1_recovery_on_the_simulated_mpsoc() {
        let key = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
        let config = PlatformConfig::mpsoc(50_000_000);
        let outcome = recover_round1_on_mpsoc(&config, key, 5_000, 11);
        let truth = Gift64::new(key).round_keys()[0];
        assert_eq!(outcome.round_key, Some(truth));
        assert!(
            outcome.encryptions < 3_000,
            "platform-driven stage used {} encryptions",
            outcome.encryptions
        );
    }
}
