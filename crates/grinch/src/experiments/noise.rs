//! Noise sensitivity ablation — quantifying the paper's remark that attack
//! efficiency "depends on the amount of noise (e.g., multiple processes
//! disputing the processor)".
//!
//! Sweeps the false-absence (eviction) probability of the probe channel and
//! measures the encryptions a noise-robust first-round recovery needs, plus
//! whether the paper's hard-elimination rule would have survived.

use crate::craft::craft_plaintext;
use crate::eliminate::CandidateSet;
use crate::noise::{recover_round1_robust, NoiseChannel};
use crate::oracle::{ObservationConfig, VictimOracle};
use crate::target::TargetSpec;
use gift_cipher::bitwise::Gift64;
use gift_cipher::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the noise ablation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseRow {
    /// Per-line false-absence probability of the channel.
    pub evict_probability: f64,
    /// Whether hard elimination (the paper's Step 3) still recovered a
    /// correct segment over a fixed sample.
    pub hard_elimination_correct: bool,
    /// Whether the robust (absence-counting) recovery got the round key.
    pub robust_recovered: bool,
    /// Encryptions the robust recovery consumed.
    pub robust_encryptions: u64,
}

/// Parameters of the noise ablation.
#[derive(Clone, Copy, Debug)]
pub struct NoiseConfig {
    /// Secret key under attack.
    pub key: Key,
    /// Decision margin of the sequential test.
    pub margin: u64,
    /// Encryption cap for the robust recovery.
    pub max_encryptions: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            key: Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0),
            margin: 12,
            max_encryptions: 400_000,
            seed: 0x401c3,
        }
    }
}

/// Whether hard elimination still yields the correct unique hypothesis for
/// one representative segment after 48 noisy observations.
fn hard_elimination_correct(config: &NoiseConfig, p: f64) -> bool {
    let mut oracle = VictimOracle::new(config.key, ObservationConfig::ideal());
    let mut noise = NoiseChannel::new(p, config.seed ^ 0x1111);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x2222);
    let segment = 4;
    let spec = TargetSpec::new(1, segment);
    let truth = Gift64::new(config.key).round_keys()[0];
    let truth_bits = ((truth.v >> segment) & 1 == 1, (truth.u >> segment) & 1 == 1);
    let mut set = CandidateSet::full();
    for _ in 0..48 {
        let pt = craft_plaintext(&[spec], &[], &mut rng).expect("single target");
        let observed = noise.apply(oracle.observe(pt));
        set.eliminate(&oracle, &spec, &observed);
    }
    set.resolved() == Some(truth_bits)
}

/// Measures one noise level.
pub fn measure(config: &NoiseConfig, evict_probability: f64) -> NoiseRow {
    measure_traced(
        config,
        evict_probability,
        grinch_telemetry::Telemetry::disabled(),
    )
}

/// Like [`measure`], but wraps the row in an `experiment.noise.cell` span
/// and publishes the robust recovery's oracle metrics into `telemetry`.
pub fn measure_traced(
    config: &NoiseConfig,
    evict_probability: f64,
    telemetry: grinch_telemetry::Telemetry,
) -> NoiseRow {
    let _span = grinch_telemetry::span!(
        telemetry,
        "experiment.noise.cell",
        evict_probability = evict_probability
    );
    let hard_ok = hard_elimination_correct(config, evict_probability);

    let mut oracle = VictimOracle::new(config.key, ObservationConfig::ideal());
    oracle.set_telemetry(telemetry);
    let mut noise = NoiseChannel::new(evict_probability, config.seed ^ 0x3333);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4444);
    let truth = Gift64::new(config.key).round_keys()[0];
    let result = recover_round1_robust(
        &mut oracle,
        &mut noise,
        config.margin,
        config.max_encryptions,
        &mut rng,
    );
    NoiseRow {
        evict_probability,
        hard_elimination_correct: hard_ok,
        robust_recovered: result.round_key == Some(truth),
        robust_encryptions: result.encryptions,
    }
}

/// The default sweep of eviction probabilities.
pub const NOISE_LEVELS: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// Runs the full noise sweep.
pub fn run(config: &NoiseConfig) -> Vec<NoiseRow> {
    run_traced(config, grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but nests every level's span under an `experiment.noise`
/// root span in `telemetry`.
pub fn run_traced(config: &NoiseConfig, telemetry: grinch_telemetry::Telemetry) -> Vec<NoiseRow> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.noise");
    NOISE_LEVELS
        .iter()
        .map(|&p| measure_traced(config, p, telemetry.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_both_strategies_work() {
        let row = measure(&NoiseConfig::default(), 0.0);
        assert!(row.hard_elimination_correct);
        assert!(row.robust_recovered);
    }

    #[test]
    fn noisy_channel_robust_survives() {
        let row = measure(&NoiseConfig::default(), 0.10);
        assert!(
            row.robust_recovered,
            "robust recovery must survive 10% noise"
        );
    }

    #[test]
    fn robust_effort_grows_with_noise() {
        let cfg = NoiseConfig::default();
        let clean = measure(&cfg, 0.0);
        let noisy = measure(&cfg, 0.10);
        assert!(
            noisy.robust_encryptions > clean.robust_encryptions,
            "noisy ({}) should cost more than clean ({})",
            noisy.robust_encryptions,
            clean.robust_encryptions
        );
    }
}
