//! Table II — practical attack analysis: which victim round the attacker
//! first probes on each platform at each clock frequency.
//!
//! This experiment runs the event-driven SoC simulator (`soc-sim`) rather
//! than the idealised observation harness: the single-processor SoC gives
//! the attacker the CPU only at RTOS quantum boundaries, while the MPSoC
//! attacker probes continuously from its own tile over the NoC.

use soc_sim::platform::{PlatformConfig, PlatformKind};
use soc_sim::scenario::{run_mpsoc, run_mpsoc_traced, run_single_soc, run_single_soc_traced};

/// One Table II cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Cell {
    /// Platform simulated.
    pub platform: PlatformKind,
    /// Core clock frequency in hertz.
    pub freq_hz: u64,
    /// Victim round (1-based) during which the attacker's first probe
    /// completed, or `None` if no probe landed inside an encryption.
    pub probed_round: Option<usize>,
}

/// The frequencies Table II sweeps.
pub const TABLE2_FREQUENCIES: [u64; 3] = [10_000_000, 25_000_000, 50_000_000];

/// Measures one Table II cell by running the platform co-simulation.
pub fn measure_cell(platform: PlatformKind, freq_hz: u64) -> Table2Cell {
    let report = match platform {
        PlatformKind::SingleSoc => run_single_soc(&PlatformConfig::single_soc(freq_hz)),
        PlatformKind::MpSoc => run_mpsoc(&PlatformConfig::mpsoc(freq_hz)),
    };
    Table2Cell {
        platform,
        freq_hz,
        probed_round: report.first_probe_round(),
    }
}

/// Like [`measure_cell`], but runs the traced co-simulation so the SoC's
/// cache, scheduler and probe metrics land in `telemetry` under an
/// `experiment.table2.cell` span.
pub fn measure_cell_traced(
    platform: PlatformKind,
    freq_hz: u64,
    telemetry: grinch_telemetry::Telemetry,
) -> Table2Cell {
    let _span = grinch_telemetry::span!(telemetry, "experiment.table2.cell", freq_hz = freq_hz);
    let report = match platform {
        PlatformKind::SingleSoc => {
            run_single_soc_traced(&PlatformConfig::single_soc(freq_hz), telemetry.clone())
        }
        PlatformKind::MpSoc => run_mpsoc_traced(&PlatformConfig::mpsoc(freq_hz), telemetry.clone()),
    };
    Table2Cell {
        platform,
        freq_hz,
        probed_round: report.first_probe_round(),
    }
}

/// Runs the full Table II sweep (both platforms × three frequencies).
pub fn run() -> Vec<Table2Cell> {
    run_traced(grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but nests every cell's span under an `experiment.table2`
/// root span in `telemetry`.
pub fn run_traced(telemetry: grinch_telemetry::Telemetry) -> Vec<Table2Cell> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.table2");
    let mut cells = Vec::new();
    for platform in [PlatformKind::SingleSoc, PlatformKind::MpSoc] {
        for freq in TABLE2_FREQUENCIES {
            cells.push(measure_cell_traced(platform, freq, telemetry.clone()));
        }
    }
    cells
}

/// Maps a probed victim round to the equivalent Fig. 3 "cache probing
/// round" parameter: a probe during victim round `r` has seen the accesses
/// of rounds `1..=r`, i.e. probing round `r - 1` (and round 1 itself means
/// the attacker samples every round — the ideal probing round 1 with
/// per-round resolution).
pub fn probing_round_equivalent(probed_round: usize) -> usize {
    probed_round.saturating_sub(1).max(1)
}

/// One cell of the quantum-sweep extension: the first probed round as a
/// function of the RTOS scheduler quantum (single-processor SoC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantumCell {
    /// Scheduler quantum in nanoseconds.
    pub quantum_ns: u64,
    /// Victim round the first probe landed in.
    pub probed_round: Option<usize>,
}

/// Sweeps the scheduler quantum on the single-processor SoC at a fixed
/// clock. The RTOS quantum is the attacker's only lever on this platform:
/// shorter quanta preempt the victim earlier and land the probe in an
/// earlier round (an OS-configuration sensitivity the paper's Table II
/// holds fixed at 10 ms).
pub fn quantum_sweep(freq_hz: u64, quanta_ns: &[u64]) -> Vec<QuantumCell> {
    quanta_ns
        .iter()
        .map(|&q| {
            let cfg = PlatformConfig::single_soc(freq_hz).with_quantum_ns(q);
            let report = run_single_soc(&cfg);
            QuantumCell {
                quantum_ns: q,
                probed_round: report.first_probe_round(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_soc_row_matches_paper() {
        let expected = [2usize, 4, 8];
        for (freq, want) in TABLE2_FREQUENCIES.iter().zip(expected) {
            let cell = measure_cell(PlatformKind::SingleSoc, *freq);
            assert_eq!(cell.probed_round, Some(want), "{freq} Hz");
        }
    }

    #[test]
    fn mpsoc_row_matches_paper() {
        for freq in TABLE2_FREQUENCIES {
            let cell = measure_cell(PlatformKind::MpSoc, freq);
            assert_eq!(cell.probed_round, Some(1), "{freq} Hz");
        }
    }

    #[test]
    fn probing_round_mapping_is_sane() {
        assert_eq!(probing_round_equivalent(1), 1);
        assert_eq!(probing_round_equivalent(2), 1);
        assert_eq!(probing_round_equivalent(8), 7);
    }

    #[test]
    fn full_sweep_has_six_cells() {
        let cells = run();
        assert_eq!(cells.len(), 6);
    }

    #[test]
    fn shorter_quanta_probe_earlier_rounds() {
        let cells = quantum_sweep(25_000_000, &[2_000_000, 5_000_000, 10_000_000, 20_000_000]);
        let rounds: Vec<usize> = cells
            .iter()
            .map(|c| c.probed_round.expect("probe lands"))
            .collect();
        assert!(
            rounds.windows(2).all(|w| w[0] <= w[1]),
            "probed round must be monotone in the quantum: {rounds:?}"
        );
        assert!(rounds[0] < rounds[3], "sweep must show a real spread");
        // The paper's 10 ms cell at 25 MHz is round 4.
        assert_eq!(rounds[2], 4);
    }
}
