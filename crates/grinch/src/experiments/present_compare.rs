//! GIFT-vs-PRESENT leakage comparison.
//!
//! The GRINCH paper presents GIFT as PRESENT's successor (§II). The two
//! ciphers expose structurally different cache leakage from the same
//! table-lookup idiom:
//!
//! * **PRESENT** XORs a full 64-bit round key into the state *before*
//!   SubCells, so the very first round's S-box indices are
//!   `plaintext ⊕ K₁` — four key bits per segment leak immediately, and
//!   two observed rounds determine the entire 80-bit key.
//! * **GIFT** adds only two key bits per segment *after* SubCells/PermBits,
//!   so key-dependent lookups appear first in round 2 and each stage yields
//!   32 bits — the reason GRINCH needs four stages and crafted inputs.
//!
//! The experiment mounts the analogous elimination attack on PRESENT-80
//! (16 index hypotheses per segment, chosen plaintexts, Flush+Reload on
//! the first round) and reports key-bits-per-encryption for both ciphers.

use crate::oracle::{ObservationConfig, VictimOracle};
use crate::stage::{run_stage, StageConfig};
use cache_sim::{Cache, CacheConfig, CacheObserver};
use gift_cipher::present::{PresentKey, TablePresent, PRESENT_SBOX_INV};
use gift_cipher::{Key, TableLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A chosen-plaintext Flush+Reload oracle around a table-driven PRESENT-80
/// victim, probing after the requested number of rounds.
pub struct PresentOracle {
    cipher: TablePresent,
    cache: Cache,
    layout: TableLayout,
    encryptions: u64,
}

impl PresentOracle {
    /// Creates the oracle with the paper's default cache geometry.
    pub fn new(key: PresentKey) -> Self {
        let layout = TableLayout::default();
        Self {
            cipher: TablePresent::new(key, layout),
            cache: Cache::new(CacheConfig::grinch_default()),
            layout,
            encryptions: 0,
        }
    }

    /// Victim encryptions triggered so far.
    pub fn encryptions(&self) -> u64 {
        self.encryptions
    }

    fn probe_addrs(&self) -> Vec<u64> {
        (0..16u8).map(|i| self.layout.sbox_entry_addr(i)).collect()
    }

    /// Observes the S-box lines touched by rounds `first..=last` (1-based)
    /// of one encryption of `plaintext` — the attacker flushes before
    /// round `first` (preemption/flush capability identical to the GIFT
    /// oracle's).
    pub fn observe_rounds(&mut self, plaintext: u64, first: usize, last: usize) -> BTreeSet<u64> {
        assert!(first >= 1 && first <= last, "invalid round window");
        self.encryptions += 1;
        let probe = self.probe_addrs();
        for &a in &probe {
            self.cache.flush_line(a);
        }
        let mut state = plaintext;
        for round in 0..last {
            if round + 1 == first {
                self.cache.flush_all();
            }
            let mut obs = CacheObserver::new(&mut self.cache);
            state = self.cipher.run_single_round(state, round, &mut obs);
        }
        let mut observed = BTreeSet::new();
        for &a in &probe {
            if self.cache.access(a).is_hit() {
                observed.insert(a);
            }
            self.cache.flush_line(a);
        }
        observed
    }

    fn line_of_index(&self, idx: u8) -> u64 {
        self.layout.sbox_entry_addr(idx)
    }
}

/// Recovers one 64-bit PRESENT round key from first-round observations:
/// per segment, sixteen nibble hypotheses are eliminated whenever the line
/// of `chosen_nibble ⊕ hypothesis` is absent.
///
/// Returns `(round_key, encryptions)` or `None` if the budget ran out.
pub fn recover_present_round1(
    oracle: &mut PresentOracle,
    max_encryptions: u64,
    seed: u64,
) -> Option<(u64, u64)> {
    let start = oracle.encryptions();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<Vec<u8>> = vec![(0..16u8).collect(); 16];
    while candidates.iter().any(|c| c.len() > 1) {
        if oracle.encryptions() - start >= max_encryptions {
            return None;
        }
        let pt: u64 = rng.gen();
        let observed = oracle.observe_rounds(pt, 1, 1);
        for (seg, cands) in candidates.iter_mut().enumerate() {
            let chosen = ((pt >> (4 * seg)) & 0xf) as u8;
            cands.retain(|&h| observed.contains(&oracle.line_of_index(chosen ^ h)));
            if cands.is_empty() {
                return None;
            }
        }
    }
    let mut rk = 0u64;
    for (seg, cands) in candidates.iter().enumerate() {
        rk |= u64::from(cands[0]) << (4 * seg);
    }
    Some((rk, oracle.encryptions() - start))
}

/// Recovers the second round key given the first: the attacker computes
/// round 1 forward and eliminates over the round-2 window.
pub fn recover_present_round2(
    oracle: &mut PresentOracle,
    rk1: u64,
    max_encryptions: u64,
    seed: u64,
) -> Option<(u64, u64)> {
    let start = oracle.encryptions();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<Vec<u8>> = vec![(0..16u8).collect(); 16];
    while candidates.iter().any(|c| c.len() > 1) {
        if oracle.encryptions() - start >= max_encryptions {
            return None;
        }
        let pt: u64 = rng.gen();
        // Round-1 output under the known rk1.
        let mut state = pt ^ rk1;
        let mut subbed = 0u64;
        for i in 0..16 {
            let nib = ((state >> (4 * i)) & 0xf) as usize;
            subbed |= u64::from(gift_cipher::present::PRESENT_SBOX[nib]) << (4 * i);
        }
        state = {
            let mut out = 0u64;
            for i in 0..64 {
                out |= ((subbed >> i) & 1) << gift_cipher::present::present_perm(i);
            }
            out
        };
        let observed = oracle.observe_rounds(pt, 2, 2);
        for (seg, cands) in candidates.iter_mut().enumerate() {
            let input_nib = ((state >> (4 * seg)) & 0xf) as u8;
            cands.retain(|&h| observed.contains(&oracle.line_of_index(input_nib ^ h)));
            if cands.is_empty() {
                return None;
            }
        }
    }
    let mut rk = 0u64;
    for (seg, cands) in candidates.iter().enumerate() {
        rk |= u64::from(cands[0]) << (4 * seg);
    }
    Some((rk, oracle.encryptions() - start))
}

/// Reconstructs the full 80-bit PRESENT key from its first two round keys
/// (the schedule is invertible from 128 observed bits).
pub fn recover_present80_key(rk1: u64, rk2: u64) -> u128 {
    // reg0[79..16] = rk1. reg1 = rotl61(reg0) with S on its top nibble and
    // the round counter (=1) on bits 19..15; rk2 = reg1[79..16].
    // reg1[75..61] = reg0[14..0]  → rk2 bits 59..45.
    let low15 = (rk2 >> 45) & 0x7fff;
    // reg1[79..76] = S(reg0[18..15]) → bit 15 via the inverse S-box.
    let top = ((rk2 >> 60) & 0xf) as usize;
    let reg0_18_15 = PRESENT_SBOX_INV[top] as u64;
    let bit15 = reg0_18_15 & 1;
    (u128::from(rk1) << 16) | u128::from((bit15 << 15) | low15)
}

/// One row of the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompareRow {
    /// Cipher name.
    pub cipher: &'static str,
    /// Key bits recovered by the measured phase.
    pub key_bits: u32,
    /// First round whose lookups depend on the key.
    pub first_leaky_round: usize,
    /// Encryptions the phase consumed.
    pub encryptions: u64,
}

/// Runs the comparison: GIFT-64 stage 1 (32 bits) versus PRESENT-80
/// round-1 recovery (64 bits), both at the earliest clean probe.
pub fn run(seed: u64) -> Vec<CompareRow> {
    run_traced(seed, grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but wraps the comparison in an `experiment.present_compare`
/// span and publishes the GIFT oracle's metrics plus a
/// `present.encryptions` counter into `telemetry`.
pub fn run_traced(seed: u64, telemetry: grinch_telemetry::Telemetry) -> Vec<CompareRow> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.present_compare");
    let mut rows = Vec::new();

    let gift_key = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let mut gift_oracle = VictimOracle::new(gift_key, ObservationConfig::ideal());
    gift_oracle.set_telemetry(telemetry.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let gift = run_stage(
        &mut gift_oracle,
        &[],
        1,
        &StageConfig::new().with_seed(seed),
        &mut rng,
    );
    rows.push(CompareRow {
        cipher: "GIFT-64",
        key_bits: 32,
        first_leaky_round: 2,
        encryptions: gift.encryptions,
    });

    let present_key = PresentKey::K80(0x0f1e_2d3c_4b5a_6978_8796);
    let mut present_oracle = PresentOracle::new(present_key);
    let r1 = recover_present_round1(&mut present_oracle, 1_000_000, seed ^ 1);
    telemetry.counter_add("present.encryptions", present_oracle.encryptions());
    rows.push(CompareRow {
        cipher: "PRESENT-80",
        key_bits: 64,
        first_leaky_round: 1,
        encryptions: r1.map_or(u64::MAX, |(_, n)| n),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gift_cipher::present::{expand_present, Present};

    const KEY80: u128 = 0x0f1e_2d3c_4b5a_6978_8796;

    #[test]
    fn round1_recovery_finds_the_true_round_key() {
        let mut oracle = PresentOracle::new(PresentKey::K80(KEY80));
        let (rk1, n) = recover_present_round1(&mut oracle, 100_000, 7).expect("resolves");
        assert_eq!(rk1, expand_present(PresentKey::K80(KEY80))[0]);
        assert!(n < 200, "PRESENT round 1 should resolve fast: {n}");
    }

    #[test]
    fn two_rounds_recover_the_full_80_bit_key() {
        let mut oracle = PresentOracle::new(PresentKey::K80(KEY80));
        let (rk1, _) = recover_present_round1(&mut oracle, 100_000, 7).expect("r1");
        let (rk2, _) = recover_present_round2(&mut oracle, rk1, 100_000, 8).expect("r2");
        let rks = expand_present(PresentKey::K80(KEY80));
        assert_eq!(rk2, rks[1]);
        let key = recover_present80_key(rk1, rk2);
        assert_eq!(key, KEY80);
        // The recovered key decrypts.
        let cipher = Present::new(PresentKey::K80(key));
        let victim = Present::new(PresentKey::K80(KEY80));
        assert_eq!(cipher.decrypt(victim.encrypt(0x1234)), 0x1234);
    }

    #[test]
    fn key_schedule_inversion_is_exact_for_many_keys() {
        for k in [
            0u128,
            1,
            0xffff,
            KEY80,
            (1 << 80) - 1,
            0xabcd_ef01_2345_6789_aaaa,
        ] {
            let key = k & ((1 << 80) - 1);
            let rks = expand_present(PresentKey::K80(key));
            assert_eq!(recover_present80_key(rks[0], rks[1]), key, "key {key:x}");
        }
    }

    #[test]
    fn present_leaks_more_bits_per_encryption_than_gift() {
        let rows = run(42);
        let gift = rows[0];
        let present = rows[1];
        assert_eq!(gift.cipher, "GIFT-64");
        assert!(present.encryptions < u64::MAX);
        let gift_rate = gift.key_bits as f64 / gift.encryptions as f64;
        let present_rate = present.key_bits as f64 / present.encryptions as f64;
        assert!(
            present_rate > gift_rate,
            "PRESENT ({present_rate:.3} bits/enc) should leak faster than GIFT ({gift_rate:.3})"
        );
    }
}
