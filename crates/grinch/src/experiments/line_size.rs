//! Table I — required encryptions to attack the first round, swept over
//! cache line size (1/2/4/8 words) and probing round (1..=5).

use crate::experiments::CellResult;
use crate::oracle::{ObservationConfig, VictimOracle};
use crate::stage::{run_stage, StageConfig};
use gift_cipher::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One Table I cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Cell {
    /// Cache line size in 8-bit words.
    pub words_per_line: usize,
    /// Cache probing round (1-based).
    pub probing_round: usize,
    /// Measured effort.
    pub result: CellResult,
}

/// Parameters of the Table I sweep.
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// Line sizes swept (the paper uses 1, 2, 4, 8 words).
    pub line_sizes: Vec<usize>,
    /// Probing rounds swept (the paper uses 1..=5).
    pub probing_rounds: Vec<usize>,
    /// Encryption cap per cell (the paper drops out beyond 1 M).
    pub max_encryptions: u64,
    /// Secret key under attack.
    pub key: Key,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            line_sizes: vec![1, 2, 4, 8],
            probing_rounds: vec![1, 2, 3, 4, 5],
            max_encryptions: 1_000_000,
            key: Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0),
            seed: 0x7ab1e1,
        }
    }
}

/// Measures one Table I cell: stage-1 recovery with the given geometry.
/// Flush is enabled, matching the paper's Table I setup (its round-1 column
/// reproduces Fig. 3's "with flush" value).
pub fn measure_cell(
    config: &Table1Config,
    words_per_line: usize,
    probing_round: usize,
) -> CellResult {
    measure_cell_traced(
        config,
        words_per_line,
        probing_round,
        grinch_telemetry::Telemetry::disabled(),
    )
}

/// Like [`measure_cell`], but wraps the cell in an `experiment.table1.cell`
/// span and publishes the oracle's metrics into `telemetry`.
pub fn measure_cell_traced(
    config: &Table1Config,
    words_per_line: usize,
    probing_round: usize,
    telemetry: grinch_telemetry::Telemetry,
) -> CellResult {
    let _span = grinch_telemetry::span!(
        telemetry,
        "experiment.table1.cell",
        words_per_line = words_per_line,
        probing_round = probing_round
    );
    let obs = ObservationConfig::ideal()
        .with_words_per_line(words_per_line)
        .with_probing_round(probing_round);
    let mut oracle = VictimOracle::new(config.key, obs);
    oracle.set_telemetry(telemetry);
    let stage_cfg = StageConfig::new()
        .with_max_encryptions(config.max_encryptions)
        .with_seed(config.seed ^ ((words_per_line as u64) << 8) ^ probing_round as u64);
    let mut rng = StdRng::seed_from_u64(stage_cfg.seed);
    let result = run_stage(&mut oracle, &[], 1, &stage_cfg, &mut rng);
    if result.is_resolved() {
        CellResult::Recovered(result.encryptions)
    } else {
        CellResult::DropOut(result.encryptions)
    }
}

/// Runs the full Table I sweep in row-major order (line size, then probing
/// round).
pub fn run(config: &Table1Config) -> Vec<Table1Cell> {
    run_traced(config, grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but nests every cell's span under an `experiment.table1`
/// root span in `telemetry`.
pub fn run_traced(
    config: &Table1Config,
    telemetry: grinch_telemetry::Telemetry,
) -> Vec<Table1Cell> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.table1");
    let mut cells = Vec::new();
    for &words in &config.line_sizes {
        for &round in &config.probing_rounds {
            cells.push(Table1Cell {
                words_per_line: words,
                probing_round: round,
                result: measure_cell_traced(config, words, round, telemetry.clone()),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_lines_cost_more_encryptions() {
        let cfg = Table1Config {
            max_encryptions: 60_000,
            ..Table1Config::default()
        };
        let w1 = measure_cell(&cfg, 1, 1);
        let w2 = measure_cell(&cfg, 2, 1);
        assert!(w1.is_recovered());
        assert!(w2.is_recovered(), "2-word lines should still resolve");
        assert!(
            w2.encryptions() > w1.encryptions(),
            "2 words ({}) should cost more than 1 word ({})",
            w2.encryptions(),
            w1.encryptions()
        );
    }

    #[test]
    fn hardest_corner_drops_out_under_small_cap() {
        // 8-word lines at probing round 5 is the paper's ">1M" corner; with
        // a small test cap it must hit the drop-out path.
        let cfg = Table1Config {
            max_encryptions: 2_000,
            ..Table1Config::default()
        };
        let cell = measure_cell(&cfg, 8, 5);
        assert!(!cell.is_recovered());
        assert_eq!(cell.to_string(), format!(">{}", cell.encryptions()));
    }

    #[test]
    fn sweep_covers_requested_grid() {
        let cfg = Table1Config {
            line_sizes: vec![1, 2],
            probing_rounds: vec![1],
            max_encryptions: 60_000,
            ..Table1Config::default()
        };
        let cells = run(&cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].words_per_line, 1);
        assert_eq!(cells[1].words_per_line, 2);
    }
}
