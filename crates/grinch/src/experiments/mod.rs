//! Experiment drivers regenerating every figure and table of the paper.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig. 3 — encryptions to break the 1st round vs probing round, with/without flush | [`probing_round::run`] |
//! | Table I — encryptions vs cache line size × probing round | [`line_size::run`] |
//! | Table II — first probe-able round vs platform × clock | [`practical::run`] |
//! | §IV-C countermeasures (ablation) | [`countermeasures::run`] |
//!
//! Each driver returns plain data rows so the `grinch-bench` binaries can
//! print them in the paper's format and the Criterion benches can time them.

pub mod countermeasures;
pub mod hierarchy;
pub mod line_size;
pub mod noise;
pub mod practical;
pub mod present_compare;
pub mod probing_round;

/// Measurement outcome for a first-round (32-bit) recovery experiment cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellResult {
    /// The 32 bits were recovered with this many encryptions.
    Recovered(u64),
    /// The encryption cap was hit first (the paper prints ">1M").
    DropOut(u64),
}

impl CellResult {
    /// Encryptions spent, whether or not recovery succeeded.
    pub fn encryptions(&self) -> u64 {
        match *self {
            Self::Recovered(n) | Self::DropOut(n) => n,
        }
    }

    /// Whether the cell recovered the round key.
    pub fn is_recovered(&self) -> bool {
        matches!(self, Self::Recovered(_))
    }
}

impl core::fmt::Display for CellResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Recovered(n) => write!(f, "{n}"),
            Self::DropOut(cap) => write!(f, ">{cap}"),
        }
    }
}
