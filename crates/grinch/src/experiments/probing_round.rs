//! Fig. 3 — required encryptions to break the 1st GIFT round as a function
//! of the cache-probing round, with and without the flush operation.

use crate::experiments::CellResult;
use crate::oracle::{ObservationConfig, VictimOracle};
use crate::stage::{run_stage, StageConfig};
use gift_cipher::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of the Fig. 3 series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig3Point {
    /// Cache probing round (the figure's horizontal axis, 1-based).
    pub probing_round: usize,
    /// Whether the attacker flushed after round 1 ("Grinch with Flush").
    pub flush: bool,
    /// Encryptions required to recover the first 32 key bits.
    pub result: CellResult,
}

/// Parameters of the Fig. 3 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Config {
    /// Probing rounds swept (the paper uses 1..=10).
    pub max_probing_round: usize,
    /// Encryption cap per cell (the paper's practicality drop-out).
    pub max_encryptions: u64,
    /// Secret key under attack.
    pub key: Key,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            max_probing_round: 10,
            max_encryptions: 1_000_000,
            key: Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0),
            seed: 0xf163,
        }
    }
}

/// Measures one Fig. 3 cell: a first-round (stage 1) recovery at the given
/// probing round and flush setting.
pub fn measure_cell(config: &Fig3Config, probing_round: usize, flush: bool) -> CellResult {
    measure_cell_traced(
        config,
        probing_round,
        flush,
        grinch_telemetry::Telemetry::disabled(),
    )
}

/// Like [`measure_cell`], but wraps the cell in an `experiment.fig3.cell`
/// span and publishes the oracle's metrics into `telemetry`.
pub fn measure_cell_traced(
    config: &Fig3Config,
    probing_round: usize,
    flush: bool,
    telemetry: grinch_telemetry::Telemetry,
) -> CellResult {
    let _span = grinch_telemetry::span!(
        telemetry,
        "experiment.fig3.cell",
        probing_round = probing_round,
        flush = flush
    );
    let obs = ObservationConfig::ideal()
        .with_probing_round(probing_round)
        .with_flush(flush);
    let mut oracle = VictimOracle::new(config.key, obs);
    oracle.set_telemetry(telemetry);
    let stage_cfg = StageConfig::new()
        .with_max_encryptions(config.max_encryptions)
        .with_seed(config.seed ^ (probing_round as u64) ^ (u64::from(flush) << 32));
    let mut rng = StdRng::seed_from_u64(stage_cfg.seed);
    let result = run_stage(&mut oracle, &[], 1, &stage_cfg, &mut rng);
    if result.is_resolved() {
        CellResult::Recovered(result.encryptions)
    } else {
        CellResult::DropOut(result.encryptions)
    }
}

/// Runs the full Fig. 3 sweep: both series over probing rounds
/// `1..=max_probing_round`.
pub fn run(config: &Fig3Config) -> Vec<Fig3Point> {
    run_traced(config, grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but nests every cell's span under an `experiment.fig3`
/// root span in `telemetry`.
pub fn run_traced(config: &Fig3Config, telemetry: grinch_telemetry::Telemetry) -> Vec<Fig3Point> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.fig3");
    let mut points = Vec::new();
    for flush in [true, false] {
        for probing_round in 1..=config.max_probing_round {
            points.push(Fig3Point {
                probing_round,
                flush,
                result: measure_cell_traced(config, probing_round, flush, telemetry.clone()),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Fig3Config {
        Fig3Config {
            max_probing_round: 3,
            max_encryptions: 40_000,
            ..Fig3Config::default()
        }
    }

    #[test]
    fn effort_grows_with_probing_round() {
        let cfg = quick_config();
        let r1 = measure_cell(&cfg, 1, true);
        let r3 = measure_cell(&cfg, 3, true);
        assert!(r1.is_recovered());
        assert!(r3.is_recovered());
        assert!(
            r3.encryptions() > r1.encryptions(),
            "round 3 ({}) should cost more than round 1 ({})",
            r3.encryptions(),
            r1.encryptions()
        );
    }

    #[test]
    fn flush_reduces_effort() {
        let cfg = quick_config();
        let with_flush = measure_cell(&cfg, 2, true);
        let without = measure_cell(&cfg, 2, false);
        assert!(with_flush.is_recovered());
        assert!(
            without.encryptions() > with_flush.encryptions(),
            "without flush ({}) should cost more than with ({})",
            without.encryptions(),
            with_flush.encryptions()
        );
    }

    #[test]
    fn sweep_produces_both_series() {
        let cfg = Fig3Config {
            max_probing_round: 2,
            max_encryptions: 20_000,
            ..Fig3Config::default()
        };
        let points = run(&cfg);
        assert_eq!(points.len(), 4);
        assert!(points.iter().any(|p| p.flush));
        assert!(points.iter().any(|p| !p.flush));
    }
}
