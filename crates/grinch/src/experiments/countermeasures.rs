//! Countermeasure ablation — evaluating the two protections §IV-C of the
//! paper proposes (the paper proposes them; this experiment measures them).

use crate::attack::{recover_full_key, AttackConfig};
use crate::oracle::{ObservationConfig, VictimOracle, VictimVariant};
use cache_sim::CacheConfig;
use gift_cipher::{Key, TableLayout};

/// Which configuration an ablation row evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protection {
    /// The unprotected lookup-table implementation.
    None,
    /// Countermeasure 1 (paper §IV-C): 8×8-bit S-box in one 8-byte line.
    WideLineSbox,
    /// Countermeasure 2 (paper §IV-C): masked `UpdateKey` for the first
    /// four rounds.
    MaskedKeySchedule,
    /// Both paper countermeasures combined (defence in depth).
    Both,
    /// Classic mitigation: constant-address full-table scan per lookup.
    FullScan,
    /// Classic mitigation: preload the whole table every round.
    Preload,
}

impl core::fmt::Display for Protection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::None => "none",
            Self::WideLineSbox => "wide-line S-box",
            Self::MaskedKeySchedule => "masked key schedule",
            Self::Both => "wide-line + masked",
            Self::FullScan => "full-table scan",
            Self::Preload => "per-round preload",
        };
        f.write_str(name)
    }
}

/// One ablation row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AblationRow {
    /// Protection under evaluation.
    pub protection: Protection,
    /// Whether the attack recovered the key.
    pub key_recovered: bool,
    /// Encryptions the attack consumed before succeeding or giving up.
    pub encryptions: u64,
}

/// Parameters of the ablation.
#[derive(Clone, Copy, Debug)]
pub struct AblationConfig {
    /// Secret key under attack.
    pub key: Key,
    /// Encryption cap per stage for the (hopeless) protected runs.
    pub max_encryptions_per_stage: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            key: Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0),
            max_encryptions_per_stage: 20_000,
        }
    }
}

fn observation_for(protection: Protection) -> ObservationConfig {
    match protection {
        Protection::None => ObservationConfig::ideal(),
        // The paper pairs the reshaped S-box with an 8-byte, line-aligned
        // placement so the whole table shares one line.
        Protection::WideLineSbox => ObservationConfig {
            layout: TableLayout::new(0x400),
            cache: CacheConfig::grinch_default().with_words_per_line(8),
            variant: VictimVariant::WideLine,
            ..ObservationConfig::ideal()
        },
        Protection::MaskedKeySchedule => ObservationConfig {
            variant: VictimVariant::MaskedSchedule,
            ..ObservationConfig::ideal()
        },
        Protection::Both => ObservationConfig {
            layout: TableLayout::new(0x400),
            cache: CacheConfig::grinch_default().with_words_per_line(8),
            variant: VictimVariant::WideLine,
            ..ObservationConfig::ideal()
        },
        Protection::FullScan => ObservationConfig {
            variant: VictimVariant::FullScan,
            ..ObservationConfig::ideal()
        },
        Protection::Preload => ObservationConfig {
            variant: VictimVariant::Preload,
            ..ObservationConfig::ideal()
        },
    }
}

/// Evaluates one protection configuration.
pub fn measure(config: &AblationConfig, protection: Protection) -> AblationRow {
    measure_traced(config, protection, grinch_telemetry::Telemetry::disabled())
}

/// Like [`measure`], but wraps the row in an `experiment.ablation.cell`
/// span and publishes the attack's metrics into `telemetry`.
pub fn measure_traced(
    config: &AblationConfig,
    protection: Protection,
    telemetry: grinch_telemetry::Telemetry,
) -> AblationRow {
    let _span = grinch_telemetry::span!(
        telemetry,
        "experiment.ablation.cell",
        protection = protection.to_string()
    );
    let mut oracle = VictimOracle::new(config.key, observation_for(protection));
    oracle.set_telemetry(telemetry);
    let mut attack = AttackConfig::new();
    attack.stage = attack
        .stage
        .with_max_encryptions(config.max_encryptions_per_stage);
    attack.max_candidates_per_stage = 64;
    let outcome = recover_full_key(&mut oracle, &attack);
    AblationRow {
        protection,
        key_recovered: outcome.key == Some(config.key),
        encryptions: outcome.encryptions,
    }
}

/// Runs the full ablation.
pub fn run(config: &AblationConfig) -> Vec<AblationRow> {
    run_traced(config, grinch_telemetry::Telemetry::disabled())
}

/// Like [`run`], but nests every row's span under an `experiment.ablation`
/// root span in `telemetry`.
pub fn run_traced(
    config: &AblationConfig,
    telemetry: grinch_telemetry::Telemetry,
) -> Vec<AblationRow> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.ablation");
    [
        Protection::None,
        Protection::WideLineSbox,
        Protection::MaskedKeySchedule,
        Protection::Both,
        Protection::FullScan,
        Protection::Preload,
    ]
    .into_iter()
    .map(|p| measure_traced(config, p, telemetry.clone()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_recovers_but_protected_do_not() {
        let cfg = AblationConfig {
            max_encryptions_per_stage: 3_000,
            ..AblationConfig::default()
        };
        let baseline = measure(&cfg, Protection::None);
        assert!(baseline.key_recovered);
        let wide = measure(&cfg, Protection::WideLineSbox);
        assert!(!wide.key_recovered);
        let masked = measure(&cfg, Protection::MaskedKeySchedule);
        assert!(!masked.key_recovered);
    }

    #[test]
    fn ablation_reports_all_rows() {
        let cfg = AblationConfig {
            max_encryptions_per_stage: 500,
            ..AblationConfig::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.encryptions > 0));
    }

    #[test]
    fn classic_software_mitigations_also_block_recovery() {
        let cfg = AblationConfig {
            max_encryptions_per_stage: 2_000,
            ..AblationConfig::default()
        };
        let scan = measure(&cfg, Protection::FullScan);
        assert!(!scan.key_recovered, "constant address stream leaks nothing");
        let preload = measure(&cfg, Protection::Preload);
        assert!(
            !preload.key_recovered,
            "always-resident lines carry no absence information"
        );
    }
}
