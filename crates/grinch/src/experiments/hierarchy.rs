//! Memory-hierarchy experiment — the paper's stated future work ("further
//! explore the effect of the memory hierarchy on the effectiveness of the
//! attack"), realised on the two-level model from `cache-sim`.
//!
//! Three configurations of the same GRINCH stage-1 campaign:
//!
//! 1. **Flat shared L1** — the paper's setup (baseline).
//! 2. **Private L1 over shared L2, coherent flush** — the attacker's flush
//!    invalidates both levels (a `clflush`-style instruction). The attack
//!    still works, but the probe surface is the L2's wider lines, so the
//!    effort rises exactly like Table I's wide-line rows.
//! 3. **Private L1 over shared L2, L2-only flush** — a cross-core attacker
//!    with no coherent flush can only evict the shared level. Victim
//!    re-accesses then hit its private L1 and never refill L2, so the
//!    probe suffers *structural false absences*: the hard-elimination rule
//!    erases the true hypothesis and the stage fails — a hierarchy, not a
//!    countermeasure, closing the channel.

use crate::craft::craft_plaintext;
use crate::eliminate::CandidateSet;
use crate::target::{disjoint_batches, TargetSpec};
use cache_sim::multilevel::TwoLevelHierarchy;
use gift_cipher::observer::{Access, MemoryObserver};
use gift_cipher::{Key, TableGift64, TableLayout, GIFT64_SEGMENTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which hierarchy/flush capability a run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchySetting {
    /// Flat shared L1 (the paper's platform).
    FlatSharedL1,
    /// Private L1 + shared L2, attacker flush reaches both levels.
    TwoLevelCoherentFlush,
    /// Private L1 + shared L2, attacker can only flush/probe L2.
    TwoLevelL2OnlyFlush,
}

impl core::fmt::Display for HierarchySetting {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::FlatSharedL1 => "flat shared L1",
            Self::TwoLevelCoherentFlush => "L1+L2, coherent flush",
            Self::TwoLevelL2OnlyFlush => "L1+L2, L2-only flush",
        };
        f.write_str(s)
    }
}

/// One row of the hierarchy experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyRow {
    /// The modelled setting.
    pub setting: HierarchySetting,
    /// Whether the stage-1 (32-bit) recovery succeeded.
    pub recovered: bool,
    /// Encryptions consumed.
    pub encryptions: u64,
}

struct VictimSideObserver<'a> {
    hierarchy: &'a mut TwoLevelHierarchy,
}

impl MemoryObserver for VictimSideObserver<'_> {
    fn on_read(&mut self, access: Access) {
        self.hierarchy.victim_read(access.addr);
    }
}

/// L2 probe line base addresses covering the S-box.
fn l2_probe_addrs(layout: &TableLayout, l2_line: usize) -> Vec<u64> {
    let lb = l2_line as u64;
    let first = layout.sbox_base / lb;
    let last = (layout.sbox_base + 15) / lb;
    (first..=last).map(|l| l * lb).collect()
}

/// Runs a stage-1 recovery under the given hierarchy setting.
pub fn measure(setting: HierarchySetting, key: Key, max_encryptions: u64) -> HierarchyRow {
    measure_traced(
        setting,
        key,
        max_encryptions,
        grinch_telemetry::Telemetry::disabled(),
    )
}

/// Like [`measure`], but wraps the row in an `experiment.hierarchy.cell`
/// span and publishes the cache/hierarchy metrics into `telemetry`.
pub fn measure_traced(
    setting: HierarchySetting,
    key: Key,
    max_encryptions: u64,
    telemetry: grinch_telemetry::Telemetry,
) -> HierarchyRow {
    let _span = grinch_telemetry::span!(
        telemetry,
        "experiment.hierarchy.cell",
        setting = setting.to_string()
    );
    match setting {
        HierarchySetting::FlatSharedL1 => {
            let mut oracle =
                crate::oracle::VictimOracle::new(key, crate::oracle::ObservationConfig::ideal());
            oracle.set_telemetry(telemetry);
            let mut rng = StdRng::seed_from_u64(0x11e7);
            let cfg = crate::stage::StageConfig::new().with_max_encryptions(max_encryptions);
            let result = crate::stage::run_stage(&mut oracle, &[], 1, &cfg, &mut rng);
            let truth = gift_cipher::Gift64::new(key).round_keys()[0];
            HierarchyRow {
                setting,
                recovered: result.round_key() == Some(truth),
                encryptions: result.encryptions,
            }
        }
        HierarchySetting::TwoLevelCoherentFlush | HierarchySetting::TwoLevelL2OnlyFlush => {
            measure_two_level(setting, key, max_encryptions, telemetry)
        }
    }
}

fn measure_two_level(
    setting: HierarchySetting,
    key: Key,
    max_encryptions: u64,
    telemetry: grinch_telemetry::Telemetry,
) -> HierarchyRow {
    let layout = TableLayout::default();
    let cipher = TableGift64::new(key, layout);
    let l2_line = 8usize;
    let mut hierarchy = TwoLevelHierarchy::grinch_default();
    hierarchy.set_telemetry(telemetry.clone());
    let probe_addrs = l2_probe_addrs(&layout, l2_line);
    let coherent = setting == HierarchySetting::TwoLevelCoherentFlush;

    let mut rng = StdRng::seed_from_u64(0x11e8);
    let mut encryptions = 0u64;
    let mut candidates: [CandidateSet; GIFT64_SEGMENTS] =
        core::array::from_fn(|_| CandidateSet::full());
    let truth = gift_cipher::Gift64::new(key).round_keys()[0];

    'batches: for batch in disjoint_batches(1) {
        let mut stall_limit = 24u64;
        loop {
            for rotation in 0..16usize {
                if batch.iter().all(|&s| candidates[s].is_resolved()) {
                    break;
                }
                let specs: Vec<TargetSpec> = batch
                    .iter()
                    .map(|&s| {
                        let pattern = if rotation == 0 {
                            0b1111
                        } else {
                            rng.gen_range(0..16u8)
                        };
                        TargetSpec::with_forced_pattern(1, s, pattern)
                    })
                    .collect();
                let mut stall = 0u64;
                while stall < stall_limit {
                    if encryptions >= max_encryptions {
                        break 'batches;
                    }
                    if batch.iter().all(|&s| candidates[s].is_resolved()) {
                        break;
                    }
                    let pt = craft_plaintext(&specs, &[], &mut rng).expect("disjoint batch");
                    encryptions += 1;
                    telemetry.counter_inc("attack.encryptions");
                    // Attacker flush phase.
                    for &a in &probe_addrs {
                        if coherent {
                            hierarchy.flush_line(a);
                        } else {
                            hierarchy.l2_mut().flush_line(a);
                        }
                    }
                    // Victim runs rounds 1..=2; attacker's flush after
                    // round 1 follows the same capability.
                    let mut state = pt;
                    for round in 0..2usize {
                        if round == 1 {
                            if coherent {
                                hierarchy.flush_all();
                            } else {
                                hierarchy.flush_l2_only();
                            }
                        }
                        let mut obs = VictimSideObserver {
                            hierarchy: &mut hierarchy,
                        };
                        state = cipher.run_single_round(state, round, &mut obs);
                    }
                    // Probe the shared L2.
                    let mut observed = std::collections::BTreeSet::new();
                    for &a in &probe_addrs {
                        if hierarchy.attacker_probe_l2(a) {
                            observed.insert(a);
                        }
                        if coherent {
                            hierarchy.flush_line(a);
                        } else {
                            hierarchy.l2_mut().flush_line(a);
                        }
                    }
                    // Eliminate on L2-line granularity.
                    let mut progressed = 0usize;
                    for spec in &specs {
                        let set = &mut candidates[spec.segment];
                        let before = set.len();
                        let survivors: Vec<(bool, bool)> = set
                            .survivors()
                            .iter()
                            .copied()
                            .filter(|&(v, u)| {
                                let idx = spec.expected_index(v, u);
                                let addr = layout.sbox_entry_addr(idx);
                                let line = addr / l2_line as u64 * l2_line as u64;
                                observed.contains(&line)
                            })
                            .collect();
                        *set = rebuild(survivors);
                        progressed += before - set.len();
                        if set.is_empty() {
                            // True hypothesis erased: channel broken.
                            break 'batches;
                        }
                    }
                    if progressed == 0 {
                        stall += 1;
                    } else {
                        stall = 0;
                    }
                }
            }
            if batch.iter().all(|&s| candidates[s].is_resolved()) {
                break;
            }
            stall_limit = stall_limit.saturating_mul(8);
        }
    }

    let recovered = candidates.iter().all(CandidateSet::is_resolved) && {
        let mut v = 0u16;
        let mut u = 0u16;
        for (s, set) in candidates.iter().enumerate() {
            let (vb, ub) = set.resolved().expect("resolved");
            v |= u16::from(vb) << s;
            u |= u16::from(ub) << s;
        }
        v == truth.v && u == truth.u
    };
    HierarchyRow {
        setting,
        recovered,
        encryptions,
    }
}

fn rebuild(survivors: Vec<(bool, bool)>) -> CandidateSet {
    let mut set = CandidateSet::full();
    // Retain exactly the given survivors.
    let keep: std::collections::BTreeSet<(bool, bool)> = survivors.into_iter().collect();
    let all = [(false, false), (true, false), (false, true), (true, true)];
    for hyp in all {
        if !keep.contains(&hyp) {
            set.remove(hyp);
        }
    }
    set
}

/// Runs all three settings.
pub fn run(key: Key, max_encryptions: u64) -> Vec<HierarchyRow> {
    run_traced(
        key,
        max_encryptions,
        grinch_telemetry::Telemetry::disabled(),
    )
}

/// Like [`run`], but nests every setting's span under an
/// `experiment.hierarchy` root span in `telemetry`.
pub fn run_traced(
    key: Key,
    max_encryptions: u64,
    telemetry: grinch_telemetry::Telemetry,
) -> Vec<HierarchyRow> {
    let _span = grinch_telemetry::span!(telemetry, "experiment.hierarchy");
    [
        HierarchySetting::FlatSharedL1,
        HierarchySetting::TwoLevelCoherentFlush,
        HierarchySetting::TwoLevelL2OnlyFlush,
    ]
    .into_iter()
    .map(|s| measure_traced(s, key, max_encryptions, telemetry.clone()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0)
    }

    #[test]
    fn flat_l1_recovers() {
        let row = measure(HierarchySetting::FlatSharedL1, key(), 100_000);
        assert!(row.recovered);
    }

    #[test]
    fn coherent_flush_recovers_at_higher_cost_than_flat() {
        // The coherent-flush recovery rides on rare all-miss encryptions,
        // so its cost is RNG-stream dependent; the cap is sized with head
        // room (observed ~620k with the vendored xoshiro stream).
        let flat = measure(HierarchySetting::FlatSharedL1, key(), 1_000_000);
        let two = measure(HierarchySetting::TwoLevelCoherentFlush, key(), 1_000_000);
        assert!(two.recovered, "coherent flush keeps the channel open");
        assert!(
            two.encryptions > flat.encryptions,
            "L2-line granularity ({}) must cost more than flat L1 ({})",
            two.encryptions,
            flat.encryptions
        );
    }

    #[test]
    fn l2_only_flush_breaks_the_channel() {
        let row = measure(HierarchySetting::TwoLevelL2OnlyFlush, key(), 50_000);
        assert!(!row.recovered, "private L1 hides repeats from the L2 probe");
    }
}
