//! Step 3 — candidate elimination.
//!
//! Each target segment has four round-key-bit hypotheses `(v, u)`. Every
//! observation is a *soundness filter*: the line predicted by the true
//! hypothesis is always present (the crafted access really happened), so a
//! hypothesis whose predicted line is **absent** from an observation is
//! definitively wrong. Noise (other segments, later rounds, missing flush)
//! only ever adds presence, never absence — which is why elimination slows
//! down but never mis-eliminates as the probing round and line size grow.

use crate::oracle::{ObservedLines, VictimOracle};
use crate::target::TargetSpec;

/// The surviving `(v_bit, u_bit)` hypotheses for one target segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateSet {
    survivors: Vec<(bool, bool)>,
}

impl CandidateSet {
    /// All four hypotheses, nothing eliminated yet.
    pub fn full() -> Self {
        Self {
            survivors: vec![(false, false), (true, false), (false, true), (true, true)],
        }
    }

    /// The surviving hypotheses.
    pub fn survivors(&self) -> &[(bool, bool)] {
        &self.survivors
    }

    /// Whether exactly one hypothesis survives.
    pub fn is_resolved(&self) -> bool {
        self.survivors.len() == 1
    }

    /// The unique survivor, if resolved.
    pub fn resolved(&self) -> Option<(bool, bool)> {
        if self.is_resolved() {
            Some(self.survivors[0])
        } else {
            None
        }
    }

    /// Number of surviving hypotheses.
    pub fn len(&self) -> usize {
        self.survivors.len()
    }

    /// Whether every hypothesis has been eliminated (indicates a broken
    /// observation channel — cannot happen with a sound oracle).
    pub fn is_empty(&self) -> bool {
        self.survivors.is_empty()
    }

    /// Removes a specific hypothesis (used by callers that evaluate
    /// consistency against their own channel model, e.g. the multi-level
    /// hierarchy experiment). Returns whether it was present.
    pub fn remove(&mut self, hypothesis: (bool, bool)) -> bool {
        let before = self.survivors.len();
        self.survivors.retain(|&h| h != hypothesis);
        self.survivors.len() != before
    }

    /// Applies one observation under the campaign `spec`: eliminates every
    /// hypothesis whose predicted line is absent. Returns how many
    /// hypotheses were eliminated.
    pub fn eliminate(
        &mut self,
        oracle: &VictimOracle,
        spec: &TargetSpec,
        observed: &ObservedLines,
    ) -> usize {
        let before = self.survivors.len();
        self.survivors
            .retain(|&(v, u)| oracle.hypothesis_consistent(spec, observed, v, u));
        before - self.survivors.len()
    }
}

impl Default for CandidateSet {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::craft::craft_plaintext;
    use crate::oracle::ObservationConfig;
    use gift_cipher::bitwise::Gift64;
    use gift_cipher::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_set_has_four_candidates() {
        let set = CandidateSet::full();
        assert_eq!(set.len(), 4);
        assert!(!set.is_resolved());
        assert!(!set.is_empty());
        assert_eq!(set.resolved(), None);
    }

    #[test]
    fn elimination_converges_to_true_key_bits() {
        let key = Key::from_u128(0x1234_5678_9abc_def0_0fed_cba9_8765_4321);
        let mut oracle = VictimOracle::new(key, ObservationConfig::ideal());
        let segment = 9;
        let spec = TargetSpec::new(1, segment);
        let rk = Gift64::new(key).round_keys()[0];
        let truth = ((rk.v >> segment) & 1 == 1, (rk.u >> segment) & 1 == 1);

        let mut set = CandidateSet::full();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..64 {
            let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
            let observed = oracle.observe(pt);
            set.eliminate(&oracle, &spec, &observed);
            assert!(
                set.survivors().contains(&truth),
                "true hypothesis must never be eliminated"
            );
            if set.is_resolved() {
                break;
            }
        }
        assert_eq!(set.resolved(), Some(truth));
    }

    #[test]
    fn elimination_never_removes_truth_even_without_flush() {
        let key = Key::from_u128(0xaaaa_bbbb_cccc_dddd_eeee_ffff_0000_1111);
        let cfg = ObservationConfig::ideal()
            .with_flush(false)
            .with_probing_round(4);
        let mut oracle = VictimOracle::new(key, cfg);
        let segment = 3;
        let spec = TargetSpec::new(1, segment);
        let rk = Gift64::new(key).round_keys()[0];
        let truth = ((rk.v >> segment) & 1 == 1, (rk.u >> segment) & 1 == 1);
        let mut set = CandidateSet::full();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
            let observed = oracle.observe(pt);
            set.eliminate(&oracle, &spec, &observed);
        }
        assert!(set.survivors().contains(&truth));
    }
}
