//! Target-bit selection — the paper's Algorithm 1, generalised.
//!
//! A GRINCH campaign targets one 4-bit *segment* of the state entering round
//! `t + 1` (the index of one S-box lookup of that round). The four bits of
//! that segment come — through round *t*'s `PermBits` — from four distinct
//! S-boxes of round *t*, one output bit each. Because the GIFT permutation
//! preserves the bit position modulo 4, source *output-bit* `b` feeds target
//! *index-bit* `b`.
//!
//! The attacker pins each of those four source output bits to a chosen value
//! `forced[b]` by restricting the corresponding round-*t* input nibble to
//! the eight S-box preimages with that output bit (the lists of Algorithm
//! 1). The resulting round-`t+1` index is then constant across encryptions:
//!
//! ```text
//! index = forced[0] ⊕ V_t[s]            (bit 0)
//!       | forced[1] ⊕ U_t[s]            (bit 1)
//!       | forced[2]                     (bit 2)
//!       | forced[3] ⊕ rc_bit(t, s)      (bit 3)
//! ```
//!
//! so observing the index reveals the two round-key bits
//! (`V_t[s] = index₀ ⊕ forced[0]`, `U_t[s] = index₁ ⊕ forced[1]` — the
//! paper's Step 4, which with `forced = 1111` reduces to `Key ← ¬Index`).

use gift_cipher::constants::ROUND_CONSTANTS;
use gift_cipher::permutation::P64_INV;
use gift_cipher::sbox::inputs_with_output_bit;
use gift_cipher::GIFT64_SEGMENTS;

/// A constraint on one round-*t* input segment: its S-box output bit
/// `output_bit` must equal `value`, which the attacker enforces by drawing
/// the segment's value from `choices` (the 8 valid S-box inputs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceConstraint {
    /// The round-*t* input segment being constrained.
    pub segment: usize,
    /// Which S-box output bit is pinned (0..4).
    pub output_bit: u8,
    /// The pinned value.
    pub value: bool,
    /// The eight segment values satisfying the constraint.
    pub choices: Vec<u8>,
}

/// One campaign target: segment `segment` of the round-`stage_round + 1`
/// S-box layer, with the four source output bits forced to `forced`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TargetSpec {
    /// 1-based round whose round key is being recovered (the paper attacks
    /// `stage_round ∈ 1..=4` to peel the whole 128-bit key).
    pub stage_round: usize,
    /// Target segment of the round-`stage_round + 1` input (0..16).
    pub segment: usize,
    /// Values forced onto the four source S-box output bits, index `b`
    /// for target index bit `b`. The paper's Algorithm 1 uses all-ones;
    /// coarse-cache-line campaigns sweep other values.
    pub forced: [bool; 4],
}

impl TargetSpec {
    /// Creates a target with the paper's default all-ones forcing.
    ///
    /// # Panics
    ///
    /// Panics if `segment >= 16` or `stage_round` is 0.
    pub fn new(stage_round: usize, segment: usize) -> Self {
        Self::with_forced(stage_round, segment, [true; 4])
    }

    /// Creates a target with explicit forced values.
    ///
    /// # Panics
    ///
    /// Panics if `segment >= 16` or `stage_round` is 0.
    pub fn with_forced(stage_round: usize, segment: usize, forced: [bool; 4]) -> Self {
        assert!(stage_round >= 1, "stage rounds are 1-based");
        assert!(segment < GIFT64_SEGMENTS, "GIFT-64 has 16 segments");
        Self {
            stage_round,
            segment,
            forced,
        }
    }

    /// Creates a target whose forced bits are the 4-bit pattern `pattern`
    /// (bit `b` of `pattern` forces source bit `b`).
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= 16`, `segment >= 16` or `stage_round == 0`.
    pub fn with_forced_pattern(stage_round: usize, segment: usize, pattern: u8) -> Self {
        assert!(pattern < 16, "forced pattern is a nibble");
        Self::with_forced(
            stage_round,
            segment,
            [
                pattern & 1 != 0,
                pattern & 2 != 0,
                pattern & 4 != 0,
                pattern & 8 != 0,
            ],
        )
    }

    /// The paper's Algorithm 1: the four source-segment constraints that pin
    /// this target's S-box index.
    ///
    /// Element `b` constrains the source segment feeding target index bit
    /// `b`.
    pub fn source_constraints(&self) -> [SourceConstraint; 4] {
        core::array::from_fn(|b| {
            let src_pos = P64_INV[4 * self.segment + b] as usize;
            let output_bit = (src_pos % 4) as u8;
            debug_assert_eq!(
                output_bit as usize, b,
                "GIFT permutation preserves bit class"
            );
            SourceConstraint {
                segment: src_pos / 4,
                output_bit,
                value: self.forced[b],
                choices: inputs_with_output_bit(output_bit, self.forced[b]),
            }
        })
    }

    /// The source segments (round-*t* input segments) this target
    /// constrains — the target's *quad*.
    pub fn source_segments(&self) -> [usize; 4] {
        core::array::from_fn(|b| P64_INV[4 * self.segment + b] as usize / 4)
    }

    /// The round-constant bit XORed into this target's index bit 3 during
    /// round `stage_round`'s `AddRoundKey`.
    pub fn round_constant_bit(&self) -> bool {
        let rc = ROUND_CONSTANTS[self.stage_round - 1];
        match self.segment {
            s if s < 6 => (rc >> s) & 1 == 1,
            15 => true, // the fixed 1 XORed into the state MSB
            _ => false,
        }
    }

    /// The S-box index of round `stage_round + 1` this campaign produces,
    /// under the hypothesis that the round key bits are `(v_bit, u_bit)`.
    pub fn expected_index(&self, v_bit: bool, u_bit: bool) -> u8 {
        let b0 = self.forced[0] ^ v_bit;
        let b1 = self.forced[1] ^ u_bit;
        let b2 = self.forced[2];
        let b3 = self.forced[3] ^ self.round_constant_bit();
        u8::from(b0) | (u8::from(b1) << 1) | (u8::from(b2) << 2) | (u8::from(b3) << 3)
    }

    /// Step 4 of the paper: inverts an observed index into the two round-key
    /// bits `(v_bit, u_bit)` of this segment.
    ///
    /// With the paper's `forced = 1111` this is exactly `Key ← ¬Index`.
    pub fn key_bits_from_index(&self, index: u8) -> (bool, bool) {
        let v = ((index & 1) != 0) ^ self.forced[0];
        let u = ((index >> 1) & 1 != 0) ^ self.forced[1];
        (v, u)
    }

    /// The four 1-based target segments that share this target's source
    /// quad. Campaigns for one segment per quad can share encryptions (their
    /// source constraints are disjoint).
    pub fn quad_partners(&self) -> [usize; 4] {
        let mut sources = self.source_segments();
        sources.sort_unstable();
        // Targets whose source set equals this target's source set.
        let mut partners = [0usize; 4];
        let mut n = 0;
        for s in 0..GIFT64_SEGMENTS {
            let mut other = TargetSpec::new(self.stage_round, s).source_segments();
            other.sort_unstable();
            if other == sources {
                partners[n] = s;
                n += 1;
            }
        }
        debug_assert_eq!(n, 4, "each quad feeds exactly four targets");
        partners
    }
}

/// Splits the 16 target segments into batches whose source quads are
/// disjoint, so one crafted plaintext can carry one campaign per quad.
///
/// Returns four batches of four target segments each.
pub fn disjoint_batches(stage_round: usize) -> [[usize; 4]; 4] {
    let mut batches = [[0usize; 4]; 4];
    let mut used = [false; GIFT64_SEGMENTS];
    let mut batch_idx = 0;
    for s in 0..GIFT64_SEGMENTS {
        if used[s] {
            continue;
        }
        // s and its quad partners all share sources; put one partner per
        // batch column? No: partners share the SAME sources, so they must go
        // to DIFFERENT batches. Conversely segments with disjoint sources go
        // to the same batch.
        let partners = TargetSpec::new(stage_round, s).quad_partners();
        for (i, &p) in partners.iter().enumerate() {
            batches[i][batch_idx] = p;
            used[p] = true;
        }
        batch_idx += 1;
    }
    debug_assert_eq!(batch_idx, 4);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use gift_cipher::sbox::sbox;

    #[test]
    fn constraints_pin_the_claimed_output_bits() {
        for seg in 0..16 {
            for pattern in 0..16u8 {
                let spec = TargetSpec::with_forced_pattern(1, seg, pattern);
                for (b, c) in spec.source_constraints().iter().enumerate() {
                    assert_eq!(c.output_bit as usize, b);
                    assert_eq!(c.choices.len(), 8);
                    for &x in &c.choices {
                        assert_eq!(
                            (sbox(x) >> c.output_bit) & 1,
                            u8::from(c.value),
                            "segment {seg} pattern {pattern} bit {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn source_segments_are_distinct() {
        for seg in 0..16 {
            let spec = TargetSpec::new(1, seg);
            let mut sources = spec.source_segments().to_vec();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), 4, "target {seg}");
        }
    }

    #[test]
    fn expected_index_and_key_bits_invert_each_other() {
        for seg in 0..16 {
            for pattern in 0..16u8 {
                let spec = TargetSpec::with_forced_pattern(2, seg, pattern);
                for v in [false, true] {
                    for u in [false, true] {
                        let idx = spec.expected_index(v, u);
                        assert_eq!(spec.key_bits_from_index(idx), (v, u));
                    }
                }
            }
        }
    }

    #[test]
    fn paper_default_forcing_gives_key_equals_not_index() {
        let spec = TargetSpec::new(1, 7);
        for idx in 0..16u8 {
            let (v, u) = spec.key_bits_from_index(idx);
            assert_eq!(v, (idx & 1) == 0, "Key[i] = ¬Index[a]");
            assert_eq!(u, ((idx >> 1) & 1) == 0, "Key[j] = ¬Index[b]");
        }
    }

    #[test]
    fn round_constant_bits_touch_low_six_segments_and_msb() {
        // Round 1 constant is 0x01: only segment 0's bit 3 is flipped,
        // plus the fixed MSB of segment 15.
        let rc1: Vec<bool> = (0..16)
            .map(|s| TargetSpec::new(1, s).round_constant_bit())
            .collect();
        assert!(rc1[0]);
        assert!(!rc1[1]);
        assert!(rc1[15]);
        for (s, &bit) in rc1.iter().enumerate().take(15).skip(6) {
            assert!(!bit, "segment {s}");
        }
    }

    #[test]
    fn quad_partners_form_a_partition() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..16 {
            let partners = TargetSpec::new(1, s).quad_partners();
            assert!(partners.contains(&s));
            for p in partners {
                seen.insert(p);
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn disjoint_batches_cover_all_segments_with_disjoint_sources() {
        let batches = disjoint_batches(1);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
        for batch in batches {
            let mut sources = Vec::new();
            for &seg in &batch {
                sources.extend(TargetSpec::new(1, seg).source_segments());
            }
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), 16, "batch sources must be disjoint");
        }
    }

    #[test]
    fn expected_index_is_constant_in_the_right_sense() {
        // Changing only non-key forced bits moves the index by a known XOR.
        let a = TargetSpec::with_forced_pattern(1, 3, 0b1111);
        let b = TargetSpec::with_forced_pattern(1, 3, 0b0011);
        for v in [false, true] {
            for u in [false, true] {
                assert_eq!(a.expected_index(v, u) ^ b.expected_index(v, u), 0b1100);
            }
        }
    }
}
