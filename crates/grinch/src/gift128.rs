//! GRINCH against **GIFT-128** — the natural extension of the paper's
//! GIFT-64 attack to the larger variant (most NIST-LWC candidates built on
//! GIFT, e.g. GIFT-COFB, use GIFT-128).
//!
//! The structure transfers directly, with two differences that make the
//! attack *cheaper* per stage:
//!
//! * GIFT-128's `AddRoundKey` XORs 64 key bits per round — `V = k1‖k0` into
//!   state bits `4i + 1` and `U = k5‖k4` into bits `4i + 2` — so each stage
//!   recovers 64 bits across the 32 segments, and **two** stages recover
//!   the full 128-bit key (rounds 1 and 2 consume `k5,k4,k1,k0` and
//!   `k7,k6,k3,k2` respectively).
//! * With 32 sources per round, one crafted plaintext can pin **eight**
//!   disjoint-quad targets at once.
//!
//! The key-bit positions differ from GIFT-64 (bits 1 and 2 of each segment
//! instead of 0 and 1), so the crafted-index algebra is re-derived here:
//!
//! ```text
//! index = forced[0]                    (bit 0 — no key)
//!       | forced[1] ⊕ V_t[s]           (bit 1)
//!       | forced[2] ⊕ U_t[s]           (bit 2)
//!       | forced[3] ⊕ rc_bit(t, s)     (bit 3)
//! ```

use crate::oracle::{ObservationConfig, ObservedLines};
use cache_sim::{Cache, CacheObserver};
use gift_cipher::bitwise::{invert_with_round_keys_128, Gift128};
use gift_cipher::constants::ROUND_CONSTANTS;
use gift_cipher::key_schedule::{Key, RoundKey128};
use gift_cipher::permutation::P128_INV;
use gift_cipher::sbox::inputs_with_output_bit;
use gift_cipher::state::with_segment_128;
use gift_cipher::{TableGift128, GIFT128_ROUNDS, GIFT128_SEGMENTS};
use rand::Rng;

/// One campaign target on GIFT-128: segment `segment` (0..32) of the
/// round-`stage_round + 1` S-box layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TargetSpec128 {
    /// 1-based round whose 64 round-key bits are being recovered
    /// (`1..=2` covers the whole key).
    pub stage_round: usize,
    /// Target segment (0..32).
    pub segment: usize,
    /// Forced source output-bit values, index `b` for target index bit `b`.
    pub forced: [bool; 4],
}

impl TargetSpec128 {
    /// Creates a target with the all-ones forcing.
    ///
    /// # Panics
    ///
    /// Panics if `segment >= 32` or `stage_round == 0`.
    pub fn new(stage_round: usize, segment: usize) -> Self {
        Self::with_forced_pattern(stage_round, segment, 0b1111)
    }

    /// Creates a target with forced bits given as a nibble pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= 16`, `segment >= 32` or `stage_round == 0`.
    pub fn with_forced_pattern(stage_round: usize, segment: usize, pattern: u8) -> Self {
        assert!(stage_round >= 1, "stage rounds are 1-based");
        assert!(segment < GIFT128_SEGMENTS, "GIFT-128 has 32 segments");
        assert!(pattern < 16, "forced pattern is a nibble");
        Self {
            stage_round,
            segment,
            forced: [
                pattern & 1 != 0,
                pattern & 2 != 0,
                pattern & 4 != 0,
                pattern & 8 != 0,
            ],
        }
    }

    /// The four round-*t* input segments feeding this target (its quad).
    pub fn source_segments(&self) -> [usize; 4] {
        core::array::from_fn(|b| P128_INV[4 * self.segment + b] as usize / 4)
    }

    /// The round-constant bit XORed into this target's index bit 3.
    pub fn round_constant_bit(&self) -> bool {
        let rc = ROUND_CONSTANTS[self.stage_round - 1];
        match self.segment {
            s if s < 6 => (rc >> s) & 1 == 1,
            31 => true, // fixed 1 into the state MSB (bit 127)
            _ => false,
        }
    }

    /// The S-box index this campaign produces under the round-key-bit
    /// hypothesis `(v_bit, u_bit)` for this segment.
    pub fn expected_index(&self, v_bit: bool, u_bit: bool) -> u8 {
        let b0 = self.forced[0];
        let b1 = self.forced[1] ^ v_bit;
        let b2 = self.forced[2] ^ u_bit;
        let b3 = self.forced[3] ^ self.round_constant_bit();
        u8::from(b0) | (u8::from(b1) << 1) | (u8::from(b2) << 2) | (u8::from(b3) << 3)
    }

    /// Inverts an observed index into `(v_bit, u_bit)`.
    pub fn key_bits_from_index(&self, index: u8) -> (bool, bool) {
        let v = ((index >> 1) & 1 != 0) ^ self.forced[1];
        let u = ((index >> 2) & 1 != 0) ^ self.forced[2];
        (v, u)
    }
}

/// Splits the 32 targets into four batches of eight with pairwise-disjoint
/// source quads.
pub fn disjoint_batches_128(stage_round: usize) -> [[usize; 8]; 4] {
    let mut batches = [[0usize; 8]; 4];
    let mut fill = [0usize; 4];
    let mut used = [false; GIFT128_SEGMENTS];
    for s in 0..GIFT128_SEGMENTS {
        if used[s] {
            continue;
        }
        // Collect the four targets sharing s's quad; they must land in
        // different batches.
        let mut quad_sources = TargetSpec128::new(stage_round, s).source_segments();
        quad_sources.sort_unstable();
        let mut partners = Vec::with_capacity(4);
        for t in 0..GIFT128_SEGMENTS {
            let mut other = TargetSpec128::new(stage_round, t).source_segments();
            other.sort_unstable();
            if other == quad_sources {
                partners.push(t);
            }
        }
        debug_assert_eq!(partners.len(), 4);
        for (batch, &p) in partners.iter().enumerate() {
            batches[batch][fill[batch]] = p;
            fill[batch] += 1;
            used[p] = true;
        }
    }
    debug_assert!(fill.iter().all(|&f| f == 8));
    batches
}

/// Crafts a plaintext pinning every target in `targets` (disjoint quads
/// required) at stage `t`, inverting through the known earlier rounds.
///
/// # Panics
///
/// Panics if targets share a source segment, disagree on the stage, or
/// `known_round_keys.len() != stage_round - 1`.
pub fn craft_plaintext_128<R: Rng + ?Sized>(
    targets: &[TargetSpec128],
    known_round_keys: &[RoundKey128],
    rng: &mut R,
) -> u128 {
    let stage = targets.first().map_or(1, |t| t.stage_round);
    assert!(
        targets.iter().all(|t| t.stage_round == stage),
        "targets span different stages"
    );
    assert_eq!(
        known_round_keys.len(),
        stage - 1,
        "stage {stage} needs {} known round keys",
        stage - 1
    );
    let mut state: u128 = (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>());
    let mut constrained = [false; GIFT128_SEGMENTS];
    for target in targets {
        for (b, &src) in target.source_segments().iter().enumerate() {
            assert!(!constrained[src], "source segment {src} doubly constrained");
            constrained[src] = true;
            let choices = inputs_with_output_bit(b as u8, target.forced[b]);
            let value = choices[rng.gen_range(0..choices.len())];
            state = with_segment_128(state, src, value);
        }
    }
    invert_with_round_keys_128(state, known_round_keys)
}

/// The GIFT-128 victim oracle: Flush+Reload over the shared cache with the
/// same probing-round convention as the GIFT-64 [`crate::oracle`].
pub struct VictimOracle128 {
    cipher: TableGift128,
    cache: Cache,
    config: ObservationConfig,
    encryptions: u64,
}

impl VictimOracle128 {
    /// Creates an oracle around a GIFT-128 victim keyed with `key`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid cache configuration or probing round.
    pub fn new(key: Key, config: ObservationConfig) -> Self {
        config
            .cache
            .validate()
            .expect("invalid cache configuration");
        assert!(
            config.probing_round >= 1 && config.probing_round < GIFT128_ROUNDS,
            "probing round must be in 1..40"
        );
        Self {
            cipher: TableGift128::new(key, config.layout),
            cache: Cache::new(config.cache),
            config,
            encryptions: 0,
        }
    }

    /// The observation configuration.
    pub fn config(&self) -> &ObservationConfig {
        &self.config
    }

    /// Total victim encryptions triggered so far.
    pub fn encryptions(&self) -> u64 {
        self.encryptions
    }

    /// One chosen-plaintext encryption observed up to the probing moment of
    /// a stage-`stage_round` campaign: the probe fires while the victim is
    /// in round `stage_round + probing_round`, and the optional flush
    /// happens right after round `stage_round` (see
    /// [`crate::oracle::VictimOracle::observe_stage`]).
    pub fn observe_stage(&mut self, plaintext: u128, stage_round: usize) -> ObservedLines {
        self.encryptions += 1;
        let probe_addrs = self.config.probe_line_addrs();
        for &a in &probe_addrs {
            self.cache.flush_line(a);
        }
        let rounds = (stage_round + self.config.probing_round).min(GIFT128_ROUNDS);
        let mut state = plaintext;
        for round in 0..rounds {
            if round == stage_round && self.config.flush_after_round1 {
                self.cache.flush_all();
            }
            let mut obs = CacheObserver::new(&mut self.cache);
            state = self.cipher.run_single_round(state, round, &mut obs);
        }
        let mut observed = ObservedLines::new();
        for &a in &probe_addrs {
            if self.cache.access(a).is_hit() {
                observed.insert(a);
            }
            self.cache.flush_line(a);
        }
        observed
    }

    /// One full encryption returning the ciphertext (verification pair).
    pub fn known_pair(&mut self, plaintext: u128) -> u128 {
        self.encryptions += 1;
        let mut obs = gift_cipher::NullObserver;
        self.cipher.encrypt_with(plaintext, &mut obs)
    }

    fn hypothesis_consistent(
        &self,
        spec: &TargetSpec128,
        observed: &ObservedLines,
        v_bit: bool,
        u_bit: bool,
    ) -> bool {
        let idx = spec.expected_index(v_bit, u_bit);
        observed.contains(&self.config.line_addr_of_index(idx))
    }
}

/// Result of one GIFT-128 stage: 64 key bits across 32 segments.
#[derive(Clone, Debug)]
pub struct Stage128Result {
    /// Per-segment surviving `(v, u)` hypotheses.
    pub candidates: Vec<Vec<(bool, bool)>>,
    /// Encryptions consumed.
    pub encryptions: u64,
    /// Whether the cap was hit.
    pub capped: bool,
}

impl Stage128Result {
    /// Whether every segment resolved uniquely.
    pub fn is_resolved(&self) -> bool {
        self.candidates.iter().all(|c| c.len() == 1)
    }

    /// The unique round key, if fully resolved.
    pub fn round_key(&self) -> Option<RoundKey128> {
        if !self.is_resolved() {
            return None;
        }
        let mut v = 0u32;
        let mut u = 0u32;
        for (s, c) in self.candidates.iter().enumerate() {
            let (vb, ub) = c[0];
            v |= u32::from(vb) << s;
            u |= u32::from(ub) << s;
        }
        Some(RoundKey128 { u, v })
    }
}

/// Runs one GIFT-128 stage with the same batched pattern-sweep strategy as
/// the GIFT-64 [`crate::stage::run_stage`].
pub fn run_stage_128<R: Rng + ?Sized>(
    oracle: &mut VictimOracle128,
    known_round_keys: &[RoundKey128],
    stage_round: usize,
    max_encryptions: u64,
    rng: &mut R,
) -> Stage128Result {
    assert_eq!(known_round_keys.len(), stage_round - 1);
    let start = oracle.encryptions();
    let all: Vec<(bool, bool)> = vec![(false, false), (true, false), (false, true), (true, true)];
    let mut candidates: Vec<Vec<(bool, bool)>> = vec![all; GIFT128_SEGMENTS];
    let mut capped = false;

    'batches: for batch in disjoint_batches_128(stage_round) {
        let mut stall_limit = 24u64;
        loop {
            for rotation in 0..16usize {
                if batch.iter().all(|&s| candidates[s].len() == 1) {
                    break;
                }
                // All-ones first (the paper's forcing), randomised patterns
                // afterwards: constant co-batched signals can permanently
                // shadow a rival's predicted line under any fixed pattern
                // schedule (see `crate::stage::run_stage`).
                let specs: Vec<TargetSpec128> = batch
                    .iter()
                    .map(|&s| {
                        let pattern = if rotation == 0 {
                            0b1111
                        } else {
                            rng.gen_range(0..16u8)
                        };
                        TargetSpec128::with_forced_pattern(stage_round, s, pattern)
                    })
                    .collect();
                let mut stall = 0u64;
                while stall < stall_limit {
                    if oracle.encryptions() - start >= max_encryptions {
                        capped = true;
                        break 'batches;
                    }
                    if batch.iter().all(|&s| candidates[s].len() == 1) {
                        break;
                    }
                    let pt = craft_plaintext_128(&specs, known_round_keys, rng);
                    let observed = oracle.observe_stage(pt, stage_round);
                    let mut progressed = 0usize;
                    for spec in &specs {
                        let before = candidates[spec.segment].len();
                        candidates[spec.segment]
                            .retain(|&(v, u)| oracle.hypothesis_consistent(spec, &observed, v, u));
                        progressed += before - candidates[spec.segment].len();
                    }
                    if progressed == 0 {
                        stall += 1;
                    } else {
                        stall = 0;
                    }
                    if batch.iter().any(|&s| candidates[s].is_empty()) {
                        // Channel broken: every hypothesis refuted.
                        capped = true;
                        break 'batches;
                    }
                }
            }
            if batch.iter().all(|&s| candidates[s].len() == 1) {
                break;
            }
            stall_limit = stall_limit.saturating_mul(8);
        }
    }

    Stage128Result {
        candidates,
        encryptions: oracle.encryptions() - start,
        capped,
    }
}

/// The outcome of a GIFT-128 full-key recovery.
#[derive(Clone, Debug)]
pub struct Attack128Outcome {
    /// The recovered, verified key.
    pub key: Option<Key>,
    /// Total encryptions consumed.
    pub encryptions: u64,
    /// Per-stage encryption counts.
    pub stage_encryptions: Vec<u64>,
}

/// Reassembles the GIFT-128 master key from two recovered round keys.
///
/// Round 1 gives `V1 = k1‖k0`, `U1 = k5‖k4`; round 2 gives `V2 = k3‖k2`,
/// `U2 = k7‖k6`.
pub fn key_from_round_keys_128(r1: RoundKey128, r2: RoundKey128) -> Key {
    Key::from_words([
        (r1.v & 0xffff) as u16,
        (r1.v >> 16) as u16,
        (r2.v & 0xffff) as u16,
        (r2.v >> 16) as u16,
        (r1.u & 0xffff) as u16,
        (r1.u >> 16) as u16,
        (r2.u & 0xffff) as u16,
        (r2.u >> 16) as u16,
    ])
}

/// Runs the complete two-stage GRINCH attack against GIFT-128.
pub fn recover_full_key_128<R: Rng + ?Sized>(
    oracle: &mut VictimOracle128,
    max_encryptions_per_stage: u64,
    rng: &mut R,
) -> Attack128Outcome {
    let verify_pt = 0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978u128;
    let verify_ct = oracle.known_pair(verify_pt);
    let mut stage_encryptions = Vec::new();

    let stage1 = run_stage_128(oracle, &[], 1, max_encryptions_per_stage, rng);
    stage_encryptions.push(stage1.encryptions);
    let Some(rk1) = stage1.round_key() else {
        return Attack128Outcome {
            key: None,
            encryptions: oracle.encryptions(),
            stage_encryptions,
        };
    };

    let stage2 = run_stage_128(oracle, &[rk1], 2, max_encryptions_per_stage, rng);
    stage_encryptions.push(stage2.encryptions);
    let Some(rk2) = stage2.round_key() else {
        return Attack128Outcome {
            key: None,
            encryptions: oracle.encryptions(),
            stage_encryptions,
        };
    };

    let candidate = key_from_round_keys_128(rk1, rk2);
    let verified = Gift128::new(candidate).encrypt(verify_pt) == verify_ct;
    Attack128Outcome {
        key: verified.then_some(candidate),
        encryptions: oracle.encryptions(),
        stage_encryptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gift_cipher::key_schedule::expand_128;
    use gift_cipher::state::segment_128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> Key {
        Key::from_u128(0x0bad_c0de_1337_beef_2468_ace0_1357_9bdf)
    }

    #[test]
    fn expected_index_and_key_bits_invert() {
        for seg in 0..32 {
            for pattern in 0..16u8 {
                let spec = TargetSpec128::with_forced_pattern(1, seg, pattern);
                for v in [false, true] {
                    for u in [false, true] {
                        assert_eq!(spec.key_bits_from_index(spec.expected_index(v, u)), (v, u));
                    }
                }
            }
        }
    }

    #[test]
    fn source_quads_are_distinct_and_partition() {
        for seg in 0..32 {
            let mut sources = TargetSpec128::new(1, seg).source_segments().to_vec();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), 4, "target {seg}");
        }
        let batches = disjoint_batches_128(1);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn batched_crafting_pins_targets() {
        let cipher = Gift128::new(key());
        let rk = cipher.round_keys()[0];
        let mut rng = StdRng::seed_from_u64(1);
        let batch = disjoint_batches_128(1)[0];
        let specs: Vec<TargetSpec128> = batch.iter().map(|&s| TargetSpec128::new(1, s)).collect();
        let pt = craft_plaintext_128(&specs, &[], &mut rng);
        let round2_input = cipher.encrypt_rounds(pt, 1);
        for spec in &specs {
            let v = (rk.v >> spec.segment) & 1 == 1;
            let u = (rk.u >> spec.segment) & 1 == 1;
            assert_eq!(
                segment_128(round2_input, spec.segment),
                spec.expected_index(v, u),
                "segment {}",
                spec.segment
            );
        }
    }

    #[test]
    fn stage2_crafting_inverts_round_one() {
        let cipher = Gift128::new(key());
        let known = &cipher.round_keys()[..1];
        let rk = cipher.round_keys()[1];
        let mut rng = StdRng::seed_from_u64(2);
        for segment in [0usize, 13, 31] {
            let spec = TargetSpec128::new(2, segment);
            let pt = craft_plaintext_128(&[spec], known, &mut rng);
            let round3_input = cipher.encrypt_rounds(pt, 2);
            let v = (rk.v >> segment) & 1 == 1;
            let u = (rk.u >> segment) & 1 == 1;
            assert_eq!(
                segment_128(round3_input, segment),
                spec.expected_index(v, u)
            );
        }
    }

    #[test]
    fn key_reassembly_inverts_schedule_prefix() {
        let k = key();
        let rks = expand_128(k, 2);
        assert_eq!(key_from_round_keys_128(rks[0], rks[1]), k);
    }

    #[test]
    fn full_gift128_key_recovery() {
        let mut oracle = VictimOracle128::new(key(), ObservationConfig::ideal());
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = recover_full_key_128(&mut oracle, 1_000_000, &mut rng);
        assert_eq!(outcome.key, Some(key()));
        assert_eq!(outcome.stage_encryptions.len(), 2);
        // Two stages instead of four: GIFT-128 should need fewer
        // encryptions than twice the GIFT-64 stage cost.
        assert!(
            outcome.encryptions < 1_500,
            "used {} encryptions",
            outcome.encryptions
        );
    }

    #[test]
    fn round_constant_hits_segment_31_msb() {
        assert!(TargetSpec128::new(1, 31).round_constant_bit());
        assert!(!TargetSpec128::new(1, 30).round_constant_bit());
        assert!(TargetSpec128::new(1, 0).round_constant_bit()); // RC1 = 0x01
    }
}
