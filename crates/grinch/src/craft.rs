//! Plaintext generation — the paper's Algorithm 2 and Step 5.
//!
//! Given the source constraints of one or more targets (with disjoint source
//! quads), [`craft_round_input`] builds a round-*t* input state whose
//! constrained segments are drawn uniformly from their 8-element choice
//! lists and whose other segments are uniformly random — exactly Algorithm 2
//! generalised to four pinned bits per target.
//!
//! For stages beyond the first (Step 5 — "update plaintext generation") the
//! crafted round-*t* input is inverted through rounds `t-1 .. 1` using the
//! round keys recovered in earlier stages, yielding the plaintext to submit.

use crate::target::TargetSpec;
use gift_cipher::bitwise::invert_with_round_keys_64;
use gift_cipher::key_schedule::RoundKey64;
use gift_cipher::state::with_segment_64;
use gift_cipher::GIFT64_SEGMENTS;
use rand::Rng;

/// Errors from plaintext crafting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CraftError {
    /// Two targets constrain the same source segment; their campaigns
    /// cannot share an encryption.
    ConflictingSources {
        /// The doubly-constrained segment.
        segment: usize,
    },
    /// The number of known round keys does not match the stage being
    /// attacked (stage `t` needs exactly `t - 1` round keys).
    WrongKnownKeyCount {
        /// Keys supplied.
        have: usize,
        /// Keys required.
        need: usize,
    },
    /// Targets disagree on the stage round.
    MixedStages,
}

impl core::fmt::Display for CraftError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ConflictingSources { segment } => {
                write!(f, "source segment {segment} constrained by two targets")
            }
            Self::WrongKnownKeyCount { have, need } => {
                write!(f, "stage needs {need} known round keys, got {have}")
            }
            Self::MixedStages => write!(f, "targets span different stage rounds"),
        }
    }
}

impl std::error::Error for CraftError {}

/// Builds a round-*t* input state satisfying every target's source
/// constraints, with all unconstrained segments uniformly random.
///
/// # Errors
///
/// Returns [`CraftError::ConflictingSources`] if two targets share a source
/// segment (use [`crate::target::disjoint_batches`] to group targets), or
/// [`CraftError::MixedStages`] if the targets disagree on `stage_round`.
pub fn craft_round_input<R: Rng + ?Sized>(
    targets: &[TargetSpec],
    rng: &mut R,
) -> Result<u64, CraftError> {
    if let Some(first) = targets.first() {
        if targets.iter().any(|t| t.stage_round != first.stage_round) {
            return Err(CraftError::MixedStages);
        }
    }
    let mut state: u64 = rng.gen();
    let mut constrained = [false; GIFT64_SEGMENTS];
    for target in targets {
        for c in target.source_constraints() {
            if constrained[c.segment] {
                return Err(CraftError::ConflictingSources { segment: c.segment });
            }
            constrained[c.segment] = true;
            let value = c.choices[rng.gen_range(0..c.choices.len())];
            state = with_segment_64(state, c.segment, value);
        }
    }
    Ok(state)
}

/// Crafts a plaintext for the given targets at stage `t`, inverting the
/// crafted round-*t* input through the `t - 1` known earlier rounds
/// (Step 5; for stage 1 the crafted state *is* the plaintext).
///
/// # Errors
///
/// Propagates [`craft_round_input`] errors, and returns
/// [`CraftError::WrongKnownKeyCount`] if `known_round_keys.len()` is not
/// `stage_round - 1`.
pub fn craft_plaintext<R: Rng + ?Sized>(
    targets: &[TargetSpec],
    known_round_keys: &[RoundKey64],
    rng: &mut R,
) -> Result<u64, CraftError> {
    let stage = targets.first().map_or(1, |t| t.stage_round);
    if known_round_keys.len() != stage - 1 {
        return Err(CraftError::WrongKnownKeyCount {
            have: known_round_keys.len(),
            need: stage - 1,
        });
    }
    let round_input = craft_round_input(targets, rng)?;
    Ok(invert_with_round_keys_64(round_input, known_round_keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::disjoint_batches;
    use gift_cipher::bitwise::{apply_with_round_keys_64, Gift64};
    use gift_cipher::key_schedule::{expand_64, Key};
    use gift_cipher::state::segment_64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The round-(t+1) S-box index the victim actually uses for `segment`,
    /// given the full cipher and a plaintext.
    fn actual_index(cipher: &Gift64, pt: u64, stage: usize, segment: usize) -> u8 {
        let input = cipher.encrypt_rounds(pt, stage);
        segment_64(input, segment)
    }

    #[test]
    fn stage1_crafted_index_is_constant_and_predicted() {
        let key = Key::from_u128(0x0123_4567_89ab_cdef_1122_3344_5566_7788);
        let cipher = Gift64::new(key);
        let rk = cipher.round_keys()[0];
        let mut rng = StdRng::seed_from_u64(7);
        for segment in 0..16 {
            let spec = TargetSpec::new(1, segment);
            let v = (rk.v >> segment) & 1 == 1;
            let u = (rk.u >> segment) & 1 == 1;
            let expected = spec.expected_index(v, u);
            for _ in 0..20 {
                let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
                assert_eq!(
                    actual_index(&cipher, pt, 1, segment),
                    expected,
                    "segment {segment}"
                );
            }
        }
    }

    #[test]
    fn stage1_crafted_index_respects_forced_patterns() {
        let key = Key::from_u128(0xfeed_beef_1234_5678_9abc_def0_1357_9bdf);
        let cipher = Gift64::new(key);
        let rk = cipher.round_keys()[0];
        let mut rng = StdRng::seed_from_u64(21);
        let segment = 11;
        for pattern in 0..16u8 {
            let spec = TargetSpec::with_forced_pattern(1, segment, pattern);
            let v = (rk.v >> segment) & 1 == 1;
            let u = (rk.u >> segment) & 1 == 1;
            let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
            assert_eq!(
                actual_index(&cipher, pt, 1, segment),
                spec.expected_index(v, u),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn later_stage_crafting_inverts_known_rounds() {
        let key = Key::from_u128(0x0bad_cafe_0bad_cafe_0bad_cafe_0bad_cafe);
        let cipher = Gift64::new(key);
        let mut rng = StdRng::seed_from_u64(99);
        for stage in 2..=4usize {
            let known = &cipher.round_keys()[..stage - 1];
            let rk = cipher.round_keys()[stage - 1];
            for segment in [0usize, 5, 15] {
                let spec = TargetSpec::new(stage, segment);
                let v = (rk.v >> segment) & 1 == 1;
                let u = (rk.u >> segment) & 1 == 1;
                let expected = spec.expected_index(v, u);
                for _ in 0..10 {
                    let pt = craft_plaintext(&[spec], known, &mut rng).unwrap();
                    assert_eq!(
                        actual_index(&cipher, pt, stage, segment),
                        expected,
                        "stage {stage} segment {segment}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_targets_pin_all_four_segments_at_once() {
        let key = Key::from_u128(0x1111_2222_3333_4444_5555_6666_7777_8888);
        let cipher = Gift64::new(key);
        let rk = cipher.round_keys()[0];
        let mut rng = StdRng::seed_from_u64(3);
        let batch = disjoint_batches(1)[0];
        let specs: Vec<TargetSpec> = batch.iter().map(|&s| TargetSpec::new(1, s)).collect();
        let pt = craft_plaintext(&specs, &[], &mut rng).unwrap();
        for &segment in &batch {
            let spec = TargetSpec::new(1, segment);
            let v = (rk.v >> segment) & 1 == 1;
            let u = (rk.u >> segment) & 1 == 1;
            assert_eq!(
                actual_index(&cipher, pt, 1, segment),
                spec.expected_index(v, u)
            );
        }
    }

    #[test]
    fn conflicting_targets_are_rejected() {
        // Quad partners share sources, so crafting them together must fail.
        let spec = TargetSpec::new(1, 0);
        let partner = spec.quad_partners()[1];
        let conflicting = TargetSpec::new(1, partner);
        let mut rng = StdRng::seed_from_u64(1);
        let err = craft_round_input(&[spec, conflicting], &mut rng).unwrap_err();
        assert!(matches!(err, CraftError::ConflictingSources { .. }));
    }

    #[test]
    fn wrong_known_key_count_is_rejected() {
        let key = Key::from_u128(42);
        let keys = expand_64(key, 3);
        let spec = TargetSpec::new(2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let err = craft_plaintext(&[spec], &keys, &mut rng).unwrap_err();
        assert_eq!(err, CraftError::WrongKnownKeyCount { have: 3, need: 1 });
    }

    #[test]
    fn mixed_stage_targets_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let err = craft_round_input(&[TargetSpec::new(1, 0), TargetSpec::new(2, 1)], &mut rng)
            .unwrap_err();
        assert_eq!(err, CraftError::MixedStages);
    }

    #[test]
    fn unconstrained_segments_vary_between_crafts() {
        let spec = TargetSpec::new(1, 0);
        let sources = spec.source_segments();
        let mut rng = StdRng::seed_from_u64(5);
        let mut varied = false;
        let a = craft_round_input(&[spec], &mut rng).unwrap();
        for _ in 0..8 {
            let b = craft_round_input(&[spec], &mut rng).unwrap();
            for seg in 0..16 {
                if !sources.contains(&seg) && segment_64(a, seg) != segment_64(b, seg) {
                    varied = true;
                }
            }
        }
        assert!(varied, "noise segments never varied");
    }

    #[test]
    fn crafted_plaintext_round_trips_through_forward_application() {
        let key = Key::from_u128(0x7777);
        let keys = expand_64(key, 2);
        let spec = TargetSpec::new(3, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let pt = craft_plaintext(&[spec], &keys, &mut rng).unwrap();
        // Applying the two known rounds forward must land on a state whose
        // constrained segments satisfy the constraints.
        let state = apply_with_round_keys_64(pt, &keys);
        for c in spec.source_constraints() {
            let nib = segment_64(state, c.segment);
            assert!(c.choices.contains(&nib));
        }
    }
}
