//! Probe noise and noise-robust key recovery.
//!
//! The paper notes that "the efficiency of the attack depends on the amount
//! of noise (e.g., multiple processes disputing the processor)". Competing
//! processes perturb the channel in two directions:
//!
//! * **extra presence** — unrelated accesses pull additional lines into the
//!   cache. Harmless to correctness: GRINCH's elimination only acts on
//!   *absence*.
//! * **false absence** — a competing process (or the OS) evicts an S-box
//!   line between the victim's access and the attacker's probe. This breaks
//!   the hard-intersection rule: the *true* hypothesis can be eliminated.
//!
//! [`NoiseChannel`] models false absence as an i.i.d. per-line eviction
//! probability applied to each observation (equivalent to competing cache
//! fills landing in the monitored sets). [`RobustCandidateSet`] replaces
//! hard elimination with absence *counting*: the true hypothesis has the
//! lowest absence rate (only the noise rate), while wrong hypotheses are
//! additionally absent whenever the round's other accesses miss their line.
//! A hypothesis is accepted once it leads every rival by a configurable
//! margin — a sequential hypothesis test that degrades gracefully with
//! noise instead of failing outright.

use crate::craft::craft_plaintext;
use crate::oracle::{ObservedLines, VictimOracle};
use crate::target::{disjoint_batches, TargetSpec};
use gift_cipher::key_schedule::RoundKey64;
use gift_cipher::GIFT64_SEGMENTS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An i.i.d. false-absence channel: each observed line is dropped with
/// probability `evict_probability` before the attacker sees the set.
#[derive(Clone, Debug)]
pub struct NoiseChannel {
    evict_probability: f64,
    rng: StdRng,
}

impl NoiseChannel {
    /// Creates a channel with the given per-line eviction probability.
    ///
    /// # Panics
    ///
    /// Panics if `evict_probability` is not in `[0, 1]`.
    pub fn new(evict_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&evict_probability),
            "probability must be in [0, 1]"
        );
        Self {
            evict_probability,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured eviction probability.
    pub fn evict_probability(&self) -> f64 {
        self.evict_probability
    }

    /// Applies the channel to one observation.
    pub fn apply(&mut self, observed: ObservedLines) -> ObservedLines {
        if self.evict_probability == 0.0 {
            return observed;
        }
        observed
            .into_iter()
            .filter(|_| self.rng.gen::<f64>() >= self.evict_probability)
            .collect()
    }
}

/// Absence counters for the four hypotheses of one segment.
#[derive(Clone, Debug, Default)]
pub struct RobustCandidateSet {
    /// `absences[h]` counts observations in which hypothesis `h`'s
    /// predicted line was absent (hypothesis order: (v,u) as 2-bit value
    /// `v | u << 1`).
    absences: [u64; 4],
    /// Total observations scored.
    observations: u64,
}

impl RobustCandidateSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations scored so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Absence count of hypothesis `(v, u)`.
    pub fn absences(&self, v: bool, u: bool) -> u64 {
        self.absences[usize::from(v) | (usize::from(u) << 1)]
    }

    /// Scores one observation under the campaign `spec`.
    pub fn score(&mut self, oracle: &VictimOracle, spec: &TargetSpec, observed: &ObservedLines) {
        self.observations += 1;
        for h in 0..4usize {
            let (v, u) = (h & 1 != 0, h & 2 != 0);
            if !oracle.hypothesis_consistent(spec, observed, v, u) {
                self.absences[h] += 1;
            }
        }
    }

    /// Decides the segment's key bits once the best hypothesis leads every
    /// rival by at least `margin` absences (a sequential test: under noise
    /// rate `p` the true hypothesis accumulates absences at rate `p`, every
    /// rival at `p + (1-p)·q` with `q` the noise-line miss rate).
    pub fn decide(&self, margin: u64) -> Option<(bool, bool)> {
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&h| self.absences[h]);
        let best = order[0];
        let runner_up = order[1];
        (self.absences[runner_up] >= self.absences[best] + margin)
            .then_some((best & 1 != 0, best & 2 != 0))
    }
}

/// Result of a noise-robust first-round recovery.
#[derive(Clone, Debug)]
pub struct RobustStageResult {
    /// The recovered round key, if every segment decided.
    pub round_key: Option<RoundKey64>,
    /// Encryptions consumed.
    pub encryptions: u64,
}

/// Recovers round 1's 32 key bits through a noisy channel using absence
/// counting instead of hard elimination.
///
/// `margin` controls the error/effort trade-off: larger margins tolerate
/// more noise at the cost of more encryptions.
pub fn recover_round1_robust(
    oracle: &mut VictimOracle,
    noise: &mut NoiseChannel,
    margin: u64,
    max_encryptions: u64,
    rng: &mut StdRng,
) -> RobustStageResult {
    let start = oracle.encryptions();
    let mut decided: [Option<(bool, bool)>; GIFT64_SEGMENTS] = [None; GIFT64_SEGMENTS];
    let mut capped = false;

    'batches: for batch in disjoint_batches(1) {
        let mut counters: Vec<RobustCandidateSet> = (0..batch.len())
            .map(|_| RobustCandidateSet::new())
            .collect();
        // Rotate patterns so co-batched constant signals do not bias a
        // rival hypothesis's line into permanent presence.
        let mut rotation = 0usize;
        loop {
            if oracle.encryptions() - start >= max_encryptions {
                capped = true;
                break 'batches;
            }
            let specs: Vec<TargetSpec> = batch
                .iter()
                .map(|&s| {
                    // All-ones first, then randomised (constant co-batched
                    // signals can bias a rival's absence counter under a
                    // fixed pattern schedule; see `crate::stage`).
                    let pattern = if rotation == 0 {
                        0b1111
                    } else {
                        rng.gen_range(0..16u8)
                    };
                    TargetSpec::with_forced_pattern(1, s, pattern)
                })
                .collect();
            // A small burst per pattern keeps the counters balanced across
            // patterns while rotating fast enough to decorrelate.
            for _ in 0..8 {
                if oracle.encryptions() - start >= max_encryptions {
                    capped = true;
                    break 'batches;
                }
                let pt = craft_plaintext(&specs, &[], rng)
                    .expect("batched targets have disjoint sources");
                let observed = noise.apply(oracle.observe(pt));
                for (i, spec) in specs.iter().enumerate() {
                    counters[i].score(oracle, spec, &observed);
                }
            }
            let mut all_decided = true;
            for (i, &seg) in batch.iter().enumerate() {
                match counters[i].decide(margin) {
                    Some(bits) => decided[seg] = Some(bits),
                    None => all_decided = false,
                }
            }
            if all_decided {
                break;
            }
            rotation += 1;
        }
    }

    let round_key = (!capped && decided.iter().all(Option::is_some)).then(|| {
        let mut v = 0u16;
        let mut u = 0u16;
        for (s, bits) in decided.iter().enumerate() {
            let (vb, ub) = bits.expect("all decided");
            v |= u16::from(vb) << s;
            u |= u16::from(ub) << s;
        }
        RoundKey64 { u, v }
    });
    RobustStageResult {
        round_key,
        encryptions: oracle.encryptions() - start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eliminate::CandidateSet;
    use crate::oracle::ObservationConfig;
    use gift_cipher::bitwise::Gift64;
    use gift_cipher::Key;

    fn key() -> Key {
        Key::from_u128(0x1f2e_3d4c_5b6a_7988_0011_2233_4455_6677)
    }

    #[test]
    fn noise_channel_zero_probability_is_identity() {
        let mut ch = NoiseChannel::new(0.0, 1);
        let set: ObservedLines = [1u64, 2, 3].into_iter().collect();
        assert_eq!(ch.apply(set.clone()), set);
    }

    #[test]
    fn noise_channel_drops_roughly_p_fraction() {
        let mut ch = NoiseChannel::new(0.25, 42);
        let mut kept = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let set: ObservedLines = (0..16u64).collect();
            total += 16;
            kept += ch.apply(set).len();
        }
        let keep_rate = kept as f64 / total as f64;
        assert!((0.70..0.80).contains(&keep_rate), "keep rate {keep_rate}");
    }

    #[test]
    fn hard_elimination_breaks_under_noise_but_robust_recovery_survives() {
        let secret = key();
        let truth = Gift64::new(secret).round_keys()[0];
        let p = 0.15;

        // Hard elimination: with 15% false absence, ~30 observations are
        // near-certain to eliminate the true hypothesis of some segment.
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let mut noise = NoiseChannel::new(p, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let spec = TargetSpec::new(1, 4);
        let mut hard = CandidateSet::full();
        for _ in 0..40 {
            let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
            let observed = noise.apply(oracle.observe(pt));
            hard.eliminate(&oracle, &spec, &observed);
        }
        let truth_bits = ((truth.v >> 4) & 1 == 1, (truth.u >> 4) & 1 == 1);
        assert!(
            !hard.survivors().contains(&truth_bits) || hard.is_empty() || !hard.is_resolved(),
            "hard elimination should be unreliable under noise"
        );

        // Robust counting: recovers the full 32-bit round key anyway.
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let mut noise = NoiseChannel::new(p, 7);
        let mut rng = StdRng::seed_from_u64(13);
        let result = recover_round1_robust(&mut oracle, &mut noise, 12, 400_000, &mut rng);
        assert_eq!(result.round_key, Some(truth));
    }

    #[test]
    fn robust_recovery_matches_hard_result_without_noise() {
        let secret = key();
        let truth = Gift64::new(secret).round_keys()[0];
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let mut noise = NoiseChannel::new(0.0, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let result = recover_round1_robust(&mut oracle, &mut noise, 6, 200_000, &mut rng);
        assert_eq!(result.round_key, Some(truth));
    }

    #[test]
    fn robust_decide_requires_margin() {
        let mut set = RobustCandidateSet::new();
        // Manually shaped counters: best = h0 with 2 absences, runner-up 6.
        set.absences = [2, 6, 9, 9];
        set.observations = 20;
        assert_eq!(set.decide(4), Some((false, false)));
        assert_eq!(set.decide(5), None);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = NoiseChannel::new(1.5, 0);
    }
}
