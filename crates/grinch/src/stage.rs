//! One GRINCH stage: recovering the 32 round-key bits of one round.
//!
//! A stage attacks the 16 target segments of round `t + 1`. Targets whose
//! source quads are disjoint share encryptions (one crafted plaintext can
//! pin four targets at once — see [`crate::target::disjoint_batches`]), so a
//! stage runs four batches of four concurrent campaigns.
//!
//! Within a batch the forced patterns rotate through all 16 values. With
//! one-word cache lines the first pattern already separates all four
//! hypotheses; with coarser lines each pattern maps the four candidate
//! indices onto lines differently (the 16-byte table is generally not
//! line-aligned, so candidate indices straddle line boundaries), and the
//! *combination* of observations across patterns pins the key bits — the
//! paper's "the attacker can continue … and assume all possibilities"
//! handled constructively. Hypotheses that remain inseparable (e.g. a
//! line-aligned table wider than the index range) are returned as residual
//! candidates for the caller to brute-force against a known pair.

use crate::craft::craft_plaintext;
use crate::eliminate::CandidateSet;
use crate::oracle::{ObservedLines, VictimOracle};
use crate::target::{disjoint_batches, TargetSpec};
use gift_cipher::key_schedule::RoundKey64;
use gift_cipher::GIFT64_SEGMENTS;
use rand::Rng;

/// Tuning knobs for a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageConfig {
    /// Hard cap on the number of encryptions a stage may spend; beyond it
    /// the stage reports whatever candidates remain (the paper drops out
    /// at 1 M).
    pub max_encryptions: u64,
    /// Consecutive no-progress encryptions after which the batch rotates to
    /// the next forced pattern (initial value; see `stall_growth`).
    pub stall_limit: u64,
    /// Number of forced-pattern rotations per escalation sweep.
    pub max_patterns: usize,
    /// After an unsuccessful sweep over all patterns, the stall limit is
    /// multiplied by this factor and the sweep repeats (until the
    /// encryption cap). Coarse cache lines need rare all-miss events to
    /// eliminate wide noise lines, so patience must escalate.
    pub stall_growth: u64,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
}

impl StageConfig {
    /// Defaults tuned for the paper's default platform (probing round 1,
    /// one-word lines).
    pub fn new() -> Self {
        Self {
            max_encryptions: 1_000_000,
            stall_limit: 24,
            max_patterns: 16,
            stall_growth: 8,
            seed: 0x6772_696e_6368, // "grinch"
        }
    }

    /// Sets the encryption cap.
    pub fn with_max_encryptions(mut self, max: u64) -> Self {
        self.max_encryptions = max;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for StageConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of one stage.
#[derive(Clone, Debug)]
pub struct StageResult {
    /// Per-segment surviving `(v, u)` hypotheses.
    pub candidates: [CandidateSet; GIFT64_SEGMENTS],
    /// Encryptions this stage consumed.
    pub encryptions: u64,
    /// Whether the stage hit its encryption cap before resolving.
    pub capped: bool,
}

impl StageResult {
    /// Whether every segment resolved to a single hypothesis.
    pub fn is_resolved(&self) -> bool {
        self.candidates.iter().all(CandidateSet::is_resolved)
    }

    /// The unique round key, if fully resolved.
    pub fn round_key(&self) -> Option<RoundKey64> {
        if !self.is_resolved() {
            return None;
        }
        let mut v = 0u16;
        let mut u = 0u16;
        for (s, set) in self.candidates.iter().enumerate() {
            let (vb, ub) = set.resolved().expect("resolved");
            v |= u16::from(vb) << s;
            u |= u16::from(ub) << s;
        }
        Some(RoundKey64 { u, v })
    }

    /// Total number of round-key candidates (the product of the per-segment
    /// survivor counts), saturating at `u64::MAX`.
    pub fn candidate_count(&self) -> u64 {
        self.candidates
            .iter()
            .map(|c| c.len() as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Enumerates up to `limit` full round-key candidates (cartesian product
    /// of the per-segment survivors). Returns `None` if the product exceeds
    /// `limit` (too ambiguous to brute-force).
    pub fn enumerate_round_keys(&self, limit: u64) -> Option<Vec<RoundKey64>> {
        if self.candidate_count() > limit {
            return None;
        }
        let mut keys = vec![RoundKey64 { u: 0, v: 0 }];
        for (s, set) in self.candidates.iter().enumerate() {
            let mut next = Vec::with_capacity(keys.len() * set.len());
            for key in &keys {
                for &(vb, ub) in set.survivors() {
                    next.push(RoundKey64 {
                        v: key.v | (u16::from(vb) << s),
                        u: key.u | (u16::from(ub) << s),
                    });
                }
            }
            keys = next;
        }
        Some(keys)
    }
}

/// Runs stage `stage_round`, recovering that round's key bits given the
/// round keys of all earlier rounds.
///
/// # Panics
///
/// Panics if `known_round_keys.len() != stage_round - 1`.
pub fn run_stage<R: Rng + ?Sized>(
    oracle: &mut VictimOracle,
    known_round_keys: &[RoundKey64],
    stage_round: usize,
    config: &StageConfig,
    rng: &mut R,
) -> StageResult {
    assert_eq!(
        known_round_keys.len(),
        stage_round - 1,
        "stage {stage_round} needs {} known round keys",
        stage_round - 1
    );
    let start_encryptions = oracle.encryptions();
    let telemetry = oracle.telemetry().clone();
    let _span = grinch_telemetry::span!(telemetry, "attack.stage", round = stage_round);
    let entropy_gauge = telemetry.is_enabled().then(|| {
        (
            telemetry.register_gauge(&format!("attack.entropy_bits.stage{stage_round}")),
            telemetry.register_counter("attack.eliminations"),
        )
    });
    // Observability feed for `grinch-obs`: joint (forced pattern, observed
    // line) counts drive the per-stage mutual-information estimate, the
    // elimination histogram the entropy-vs-probe trajectory. All slots are
    // registered (names rendered) once, before the campaign loop.
    let obs_handles = telemetry.is_enabled().then(|| {
        let lines = oracle.config().probe_line_addrs().len();
        let joint: Vec<Vec<grinch_telemetry::CounterHandle>> = (0..16)
            .map(|p| {
                (0..lines)
                    .map(|l| {
                        telemetry.register_counter(&format!(
                            "attack.stage{stage_round}.joint.p{p:x}.l{l:02}"
                        ))
                    })
                    .collect()
            })
            .collect();
        (
            joint,
            telemetry.register_counter(&format!("attack.stage{stage_round}.eliminations")),
            telemetry.register_histogram(&format!(
                "attack.stage{stage_round}.elimination_encryptions"
            )),
        )
    });
    let mut candidates: [CandidateSet; GIFT64_SEGMENTS] =
        core::array::from_fn(|_| CandidateSet::full());
    let mut capped = false;
    if let Some((gauge, _)) = entropy_gauge {
        telemetry.set(gauge, entropy_bits(&candidates));
    }
    // Scratch reused across every observation of the stage: the spec list,
    // the observed-line set and the resolved line indices are rewritten in
    // place instead of reallocated per encryption.
    let mut specs: Vec<TargetSpec> = Vec::with_capacity(4);
    let mut observed = ObservedLines::new();
    let mut observed_line_indices: Vec<usize> = Vec::new();

    'batches: for batch in disjoint_batches(stage_round) {
        let mut stall_limit = config.stall_limit.max(1);
        loop {
            for pattern_rotation in 0..config.max_patterns {
                if batch.iter().all(|&s| candidates[s].is_resolved()) {
                    break;
                }
                // Each segment gets its own forced pattern. The first
                // campaign uses the paper's all-ones forcing; later ones
                // RANDOMISE the patterns: co-batched campaigns emit
                // constant signal indices, and with any fixed pattern
                // lattice a rival hypothesis can be permanently shadowed by
                // a signal that always lands on its predicted line.
                // Randomisation makes every shadow transient.
                specs.clear();
                specs.extend(batch.iter().map(|&s| {
                    let pattern = if pattern_rotation == 0 {
                        0b1111
                    } else {
                        rng.gen_range(0..16u8)
                    };
                    TargetSpec::with_forced_pattern(stage_round, s, pattern)
                }));
                let mut stall = 0u64;
                while stall < stall_limit {
                    if oracle.encryptions() - start_encryptions >= config.max_encryptions {
                        capped = true;
                        break 'batches;
                    }
                    if batch.iter().all(|&s| candidates[s].is_resolved()) {
                        break;
                    }
                    let pt = craft_plaintext(&specs, known_round_keys, rng)
                        .expect("batched targets have disjoint sources");
                    oracle.observe_stage_into(pt, stage_round, &mut observed);
                    if let Some((joint, _, _)) = &obs_handles {
                        // Joint (pattern, line) counts: with a leaky victim
                        // the forced pattern determines the signal line, so
                        // the profiler's I(pattern; line) comes out high;
                        // pattern-independent footprints (preload, wide
                        // lines) drive it towards zero. Line indices resolve
                        // once per observation and the whole feed publishes
                        // under a single registry lock.
                        observed_line_indices.clear();
                        observed_line_indices.extend(
                            observed
                                .iter()
                                .filter_map(|&addr| oracle.config().line_index_of_addr(addr)),
                        );
                        if let Some(mut b) = telemetry.batch() {
                            for spec in &specs {
                                let p = spec
                                    .forced
                                    .iter()
                                    .enumerate()
                                    .fold(0usize, |acc, (b, &v)| acc | (usize::from(v) << b));
                                for &l in &observed_line_indices {
                                    b.inc(joint[p][l]);
                                }
                            }
                        }
                    }
                    let mut progressed = 0;
                    for spec in &specs {
                        progressed += candidates[spec.segment].eliminate(oracle, spec, &observed);
                    }
                    if progressed == 0 {
                        stall += 1;
                    } else {
                        stall = 0;
                        // All four progress metrics publish under one guard.
                        if let Some(mut b) = telemetry.batch() {
                            if let Some((gauge, eliminations)) = entropy_gauge {
                                b.add(eliminations, progressed as u64);
                                b.set(gauge, entropy_bits(&candidates));
                            }
                            if let Some((_, eliminations, trajectory)) = &obs_handles {
                                b.add(*eliminations, progressed as u64);
                                b.record(*trajectory, oracle.encryptions() - start_encryptions);
                            }
                        }
                    }
                    if batch.iter().any(|&s| candidates[s].is_empty()) {
                        // Every hypothesis refuted: the observation channel
                        // is broken (noise or a countermeasure); burning
                        // more encryptions cannot help.
                        capped = true;
                        break 'batches;
                    }
                }
            }
            if batch.iter().all(|&s| candidates[s].is_resolved()) {
                break;
            }
            // Unresolved after a full pattern sweep: escalate patience —
            // wide noise lines are only eliminated by rare all-miss
            // encryptions, so each sweep waits longer before rotating.
            stall_limit = stall_limit.saturating_mul(config.stall_growth.max(2));
        }
    }

    StageResult {
        candidates,
        encryptions: oracle.encryptions() - start_encryptions,
        capped,
    }
}

/// Shannon entropy (in bits) still in the per-segment candidate sets: the
/// log2 of the number of round-key combinations not yet eliminated. Starts
/// at 32 (four hypotheses in each of 16 segments) and reaches 0 when the
/// round key is pinned.
fn entropy_bits(candidates: &[CandidateSet; GIFT64_SEGMENTS]) -> f64 {
    candidates
        .iter()
        .map(|c| (c.len().max(1) as f64).log2())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ObservationConfig;
    use gift_cipher::bitwise::Gift64;
    use gift_cipher::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> Key {
        Key::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210)
    }

    #[test]
    fn stage1_recovers_first_round_key_exactly() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_stage(&mut oracle, &[], 1, &StageConfig::new(), &mut rng);
        assert!(result.is_resolved(), "stage 1 should fully resolve");
        assert!(!result.capped);
        let expected = Gift64::new(key()).round_keys()[0];
        assert_eq!(result.round_key(), Some(expected));
        // Paper scale: ~100 encryptions for 32 bits in the ideal setting.
        assert!(
            result.encryptions < 600,
            "stage used {} encryptions",
            result.encryptions
        );
    }

    #[test]
    fn stage2_uses_known_round1_key() {
        let reference = Gift64::new(key());
        let known = &reference.round_keys()[..1];
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_stage(&mut oracle, known, 2, &StageConfig::new(), &mut rng);
        assert!(result.is_resolved());
        assert_eq!(result.round_key(), Some(reference.round_keys()[1]));
    }

    #[test]
    fn encryption_cap_is_respected() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = StageConfig::new().with_max_encryptions(5);
        let result = run_stage(&mut oracle, &[], 1, &cfg, &mut rng);
        assert!(result.capped);
        assert!(result.encryptions <= 5);
        assert!(!result.is_resolved());
        assert!(result.candidate_count() > 1);
    }

    #[test]
    fn enumerate_round_keys_respects_limit_and_contains_truth() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = StageConfig::new().with_max_encryptions(12);
        let result = run_stage(&mut oracle, &[], 1, &cfg, &mut rng);
        let count = result.candidate_count();
        if count <= 1 << 16 {
            let keys = result.enumerate_round_keys(1 << 16).expect("within limit");
            assert_eq!(keys.len() as u64, count);
            let truth = Gift64::new(key()).round_keys()[0];
            assert!(keys.contains(&truth));
        }
        assert_eq!(result.enumerate_round_keys(0), None);
    }

    #[test]
    fn stage_publishes_per_line_and_joint_observability_counters() {
        let tel = grinch_telemetry::Telemetry::new();
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        oracle.set_telemetry(tel.clone());
        let mut rng = StdRng::seed_from_u64(6);
        let result = run_stage(&mut oracle, &[], 1, &StageConfig::new(), &mut rng);
        assert!(result.is_resolved());

        let snap = tel.snapshot();
        // Per-line probe-hit counters cover the stage and sum to the
        // stage's probe hits.
        let line_hits: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("attack.stage1.line_hits."))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(line_hits, snap.counter("attack.stage1.probe_hits"));
        assert!(line_hits > 0);
        // Joint (pattern, line) counters exist and stay within bounds.
        let joint: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("attack.stage1.joint."))
            .map(|(_, v)| *v)
            .sum();
        assert!(joint > 0, "joint counters must be populated");
        // Per-stage totals mirror the stage result.
        assert_eq!(
            snap.counter("attack.stage1.encryptions"),
            result.encryptions
        );
        assert_eq!(snap.counter("attack.stage1.eliminations"), 48);
        let trajectory = snap
            .histogram("attack.stage1.elimination_encryptions")
            .expect("trajectory histogram");
        assert!(trajectory.count() > 0);
        assert!(trajectory.max().unwrap() <= result.encryptions);
    }

    #[test]
    fn coarse_two_word_lines_still_resolve_via_pattern_sweeps() {
        let cfg_obs = ObservationConfig::ideal().with_words_per_line(2);
        let mut oracle = VictimOracle::new(key(), cfg_obs);
        let mut rng = StdRng::seed_from_u64(5);
        let result = run_stage(&mut oracle, &[], 1, &StageConfig::new(), &mut rng);
        assert!(
            result.is_resolved(),
            "misaligned 2-word lines leak both bits"
        );
        assert_eq!(result.round_key(), Some(Gift64::new(key()).round_keys()[0]));
        assert!(result.encryptions > 0);
    }
}
