//! The full GRINCH attack: four stages, candidate search, verification.
//!
//! Rounds 1–4 of GIFT-64 together consume all eight 16-bit key words
//! (`(k1,k0)`, `(k3,k2)`, `(k5,k4)`, `(k7,k6)`), so recovering four
//! consecutive round keys *is* recovering the 128-bit master key. The
//! attack runs the stages in order, feeding each stage the round keys
//! recovered so far (Step 5); if coarse cache lines leave residual
//! ambiguity, the candidate combinations are searched depth-first and every
//! complete key is checked against one known plaintext/ciphertext pair.

use crate::oracle::VictimOracle;
use crate::stage::{run_stage, StageConfig, StageResult};
use gift_cipher::bitslice::{BitslicedGift64, LANES};
use gift_cipher::bitwise::Gift64;
use gift_cipher::key_schedule::{Key, RoundKey64};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of stages (= rounds attacked = key words / 2).
pub const STAGES: usize = 4;

/// Configuration of a full-key recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackConfig {
    /// Per-stage tuning.
    pub stage: StageConfig,
    /// Maximum number of full-round-key candidates a single stage may leave
    /// for the depth-first search (the paper's "assume all possibilities",
    /// bounded).
    pub max_candidates_per_stage: u64,
    /// Plaintext used for the final known-pair verification.
    pub verification_plaintext: u64,
}

impl AttackConfig {
    /// Defaults matching the paper's ideal setting.
    pub fn new() -> Self {
        Self {
            stage: StageConfig::new(),
            max_candidates_per_stage: 1 << 12,
            verification_plaintext: 0x0123_4567_89ab_cdef,
        }
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of a full-key recovery attempt.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// The recovered and verified 128-bit key, if successful.
    pub key: Option<Key>,
    /// Total victim encryptions consumed (the paper's headline metric:
    /// "the full key could be recovered with less than 400 encryptions").
    pub encryptions: u64,
    /// Encryptions consumed by each stage (first search path).
    pub stage_encryptions: Vec<u64>,
    /// Whether any stage hit its encryption cap.
    pub capped: bool,
}

/// Reassembles the master key from the four recovered round keys.
///
/// Round `t`'s key is `(V, U) = (k_{2t-2}, k_{2t-1})`, so the word vector is
/// `[r1.v, r1.u, r2.v, r2.u, r3.v, r3.u, r4.v, r4.u]`.
pub fn key_from_round_keys(round_keys: &[RoundKey64; STAGES]) -> Key {
    let mut words = [0u16; 8];
    for (t, rk) in round_keys.iter().enumerate() {
        words[2 * t] = rk.v;
        words[2 * t + 1] = rk.u;
    }
    Key::from_words(words)
}

/// Runs the complete four-stage GRINCH attack against `oracle`.
///
/// Returns the verified key (or `None` if the observation channel did not
/// determine it within the configured budgets) together with the encryption
/// counts the paper's experiments report.
pub fn recover_full_key(oracle: &mut VictimOracle, config: &AttackConfig) -> AttackOutcome {
    let telemetry = oracle.telemetry().clone();
    let _span = grinch_telemetry::span!(telemetry, "attack.recover_full_key", stages = STAGES);
    let key_recovered = telemetry.register_gauge("attack.key_recovered");
    let mut rng = StdRng::seed_from_u64(config.stage.seed);
    // One encryption for the verification pair.
    let verify_pt = config.verification_plaintext;
    let verify_ct = oracle.known_pair(verify_pt);

    let mut stage_encryptions = Vec::new();
    let mut capped = false;
    let key = search(
        oracle,
        config,
        &mut rng,
        Vec::new(),
        verify_pt,
        verify_ct,
        &mut stage_encryptions,
        &mut capped,
    );
    telemetry.set(key_recovered, if key.is_some() { 1.0 } else { 0.0 });
    AttackOutcome {
        key,
        encryptions: oracle.encryptions(),
        stage_encryptions,
        capped,
    }
}

/// Depth-first search over residual per-stage candidates.
#[allow(clippy::too_many_arguments)]
fn search(
    oracle: &mut VictimOracle,
    config: &AttackConfig,
    rng: &mut StdRng,
    known: Vec<RoundKey64>,
    verify_pt: u64,
    verify_ct: u64,
    stage_encryptions: &mut Vec<u64>,
    capped: &mut bool,
) -> Option<Key> {
    if known.len() == STAGES {
        let rks: [RoundKey64; STAGES] = [known[0], known[1], known[2], known[3]];
        let candidate = key_from_round_keys(&rks);
        let cipher = Gift64::new(candidate);
        return (cipher.encrypt(verify_pt) == verify_ct).then_some(candidate);
    }
    let stage_round = known.len() + 1;
    let result: StageResult = run_stage(oracle, &known, stage_round, &config.stage, rng);
    if stage_encryptions.len() < stage_round {
        stage_encryptions.push(result.encryptions);
    }
    *capped |= result.capped;
    let candidates = result.enumerate_round_keys(config.max_candidates_per_stage)?;
    if stage_round == STAGES {
        // Final stage: every candidate completes a full key, so instead of
        // recursing once per candidate the whole set is verified against the
        // known pair in bitsliced chunks — one sliced encryption checks up
        // to 64 keys. DFS order is preserved (first verifying candidate
        // wins), so the result is identical to the scalar search.
        return verify_final_candidates(&known, &candidates, verify_pt, verify_ct);
    }
    for rk in candidates {
        let mut next = known.clone();
        next.push(rk);
        if let Some(key) = search(
            oracle,
            config,
            rng,
            next,
            verify_pt,
            verify_ct,
            stage_encryptions,
            capped,
        ) {
            return Some(key);
        }
    }
    None
}

/// Verifies the final-stage candidates against the known pair.
///
/// A single candidate (the common, fully-resolved case) takes the scalar
/// reference path; residual ambiguity is ground through
/// [`BitslicedGift64::per_lane`] in chunks of up to [`LANES`] keys, one
/// sliced encryption per chunk.
fn verify_final_candidates(
    known: &[RoundKey64],
    finals: &[RoundKey64],
    verify_pt: u64,
    verify_ct: u64,
) -> Option<Key> {
    debug_assert_eq!(known.len(), STAGES - 1);
    let full_key =
        |rk: RoundKey64| key_from_round_keys(&[known[0], known[1], known[2], rk]);
    if let [only] = finals {
        let candidate = full_key(*only);
        return (Gift64::new(candidate).encrypt(verify_pt) == verify_ct).then_some(candidate);
    }
    let mut keys: Vec<Key> = Vec::with_capacity(LANES);
    for chunk in finals.chunks(LANES) {
        keys.clear();
        keys.extend(chunk.iter().map(|&rk| full_key(rk)));
        let sliced = BitslicedGift64::per_lane(&keys);
        let mut blocks = [verify_pt; LANES];
        sliced.encrypt_blocks(&mut blocks);
        if let Some(i) = blocks[..chunk.len()]
            .iter()
            .position(|&ct| ct == verify_ct)
        {
            return Some(keys[i]);
        }
    }
    None
}

/// Key-schedule redundancy check — verification **without** a known
/// plaintext/ciphertext pair.
///
/// GIFT-64's schedule reuses the round-1 words in round 5 with local
/// rotations: `V₅ = k0 ⋙ 12`, `U₅ = k1 ⋙ 2`. After the four stages an
/// attacker can therefore run a *fifth* stage (crafting through the four
/// now-known rounds) and check the recovered round-5 key against the
/// rotation of the stage-1 result. Agreement confirms the whole recovery
/// using only the side channel itself — useful when no ciphertext ever
/// leaves the device (e.g. a MAC-only deployment).
///
/// Returns `Some(true)` when round 5 was recovered and matches,
/// `Some(false)` on a mismatch, and `None` when the fifth stage did not
/// resolve within its budget.
pub fn redundant_schedule_check(
    oracle: &mut VictimOracle,
    recovered: &[RoundKey64; STAGES],
    config: &AttackConfig,
) -> Option<bool> {
    let mut rng = StdRng::seed_from_u64(config.stage.seed ^ 0x5);
    let result = run_stage(oracle, recovered, STAGES + 1, &config.stage, &mut rng);
    let rk5 = result.round_key()?;
    let expected = RoundKey64 {
        v: recovered[0].v.rotate_right(12),
        u: recovered[0].u.rotate_right(2),
    };
    Some(rk5 == expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ObservationConfig, ProbeStrategy, VictimVariant};
    use gift_cipher::key_schedule::expand_64;

    #[test]
    fn key_reassembly_inverts_key_schedule_prefix() {
        let key = Key::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        let rks = expand_64(key, 4);
        let rebuilt = key_from_round_keys(&[rks[0], rks[1], rks[2], rks[3]]);
        assert_eq!(rebuilt, key);
    }

    #[test]
    fn full_key_recovery_in_ideal_setting() {
        let secret = Key::from_u128(0x00ff_11ee_22dd_33cc_44bb_55aa_6699_7788);
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let outcome = recover_full_key(&mut oracle, &AttackConfig::new());
        assert_eq!(outcome.key, Some(secret));
        assert!(!outcome.capped);
        assert_eq!(outcome.stage_encryptions.len(), 4);
        // The paper's headline: full key in < 400 encryptions at probing
        // round 1. Our implementation should be the same order of magnitude.
        assert!(
            outcome.encryptions < 1_200,
            "used {} encryptions",
            outcome.encryptions
        );
    }

    #[test]
    fn redundant_schedule_check_confirms_a_correct_recovery() {
        let secret = Key::from_u128(0x3141_5926_5358_9793_2384_6264_3383_2795);
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let config = AttackConfig::new();
        let outcome = recover_full_key(&mut oracle, &config);
        assert_eq!(outcome.key, Some(secret));
        let rks = expand_64(secret, 4);
        let recovered = [rks[0], rks[1], rks[2], rks[3]];
        assert_eq!(
            redundant_schedule_check(&mut oracle, &recovered, &config),
            Some(true)
        );
    }

    #[test]
    fn redundant_schedule_check_flags_a_wrong_round_one() {
        let secret = Key::from_u128(0x2718_2818_2845_9045_2353_6028_7471_3527);
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        let mut config = AttackConfig::new();
        // A wrong prefix usually empties the candidate sets quickly; the
        // cap only bounds the pathological stall case.
        config.stage = config.stage.with_max_encryptions(20_000);
        let rks = expand_64(secret, 4);
        let mut wrong = [rks[0], rks[1], rks[2], rks[3]];
        wrong[0].v ^= 0x0040; // flip one recovered stage-1 bit
                              // The fifth stage crafts through the correct rounds 1..4? No — it
                              // crafts with the WRONG round-1 key, so its predictions are offset
                              // by a constant and either resolve to a key that mismatches the
                              // rotation, or fail to resolve; both reject.
        assert_ne!(
            redundant_schedule_check(&mut oracle, &wrong, &config),
            Some(true)
        );
    }

    #[test]
    fn telemetry_captures_the_whole_recovery() {
        let secret = Key::from_u128(0x00ff_11ee_22dd_33cc_44bb_55aa_6699_7788);
        let tel = grinch_telemetry::Telemetry::new();
        let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
        oracle.set_telemetry(tel.clone());
        let outcome = recover_full_key(&mut oracle, &AttackConfig::new());
        assert_eq!(outcome.key, Some(secret));
        // Counters mirror the oracle's own effort metric.
        assert_eq!(tel.counter("attack.encryptions"), outcome.encryptions);
        assert!(tel.counter("attack.probes") > 0);
        assert!(tel.counter("attack.eliminations") >= 4 * 16 * 3);
        // Entropy gauges end at zero for every resolved stage. The names are
        // rendered once into handles (the same registry slots the stage
        // driver writes through) instead of formatting per read.
        let entropy_gauges: Vec<_> = (1..=STAGES)
            .map(|stage| tel.register_gauge(&format!("attack.entropy_bits.stage{stage}")))
            .collect();
        for (stage, gauge) in entropy_gauges.into_iter().enumerate() {
            assert_eq!(tel.gauge_of(gauge), Some(0.0), "stage {}", stage + 1);
        }
        assert_eq!(
            tel.gauge_of(tel.register_gauge("attack.key_recovered")),
            Some(1.0)
        );
        // The stage spans nest under the root recovery span and close in
        // simulated time.
        let snap = tel.snapshot();
        let root = &snap.spans[0];
        assert_eq!(root.name, "attack.recover_full_key");
        let stages: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "attack.stage")
            .collect();
        assert!(stages.len() >= STAGES);
        for s in &stages {
            assert_eq!(s.parent, Some(root.id));
            assert!(s.end_ns.expect("closed") >= s.start_ns);
        }
        assert!(root.end_ns.expect("closed") > 0);
        // Cache activity from the shared L1 is visible too.
        assert!(tel.counter("cache.l1.hits") > 0);
        assert!(tel.counter("cache.l1.flushes") > 0);
    }

    #[test]
    fn full_key_recovery_with_prime_probe() {
        let secret = Key::from_u128(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef);
        let cfg = ObservationConfig {
            strategy: ProbeStrategy::PrimeProbe,
            ..ObservationConfig::ideal()
        };
        let mut oracle = VictimOracle::new(secret, cfg);
        let outcome = recover_full_key(&mut oracle, &AttackConfig::new());
        assert_eq!(outcome.key, Some(secret));
    }

    #[test]
    fn wide_line_countermeasure_defeats_recovery() {
        let secret = Key::from_u128(0x1111_2222_3333_4444_5555_6666_7777_8888);
        let cfg = ObservationConfig {
            layout: gift_cipher::TableLayout::new(0x400),
            cache: cache_sim::CacheConfig::grinch_default().with_words_per_line(8),
            variant: VictimVariant::WideLine,
            ..ObservationConfig::ideal()
        };
        let mut oracle = VictimOracle::new(secret, cfg);
        let mut config = AttackConfig::new();
        // Keep the hopeless search bounded.
        config.stage = config.stage.with_max_encryptions(2_000);
        config.max_candidates_per_stage = 16;
        let outcome = recover_full_key(&mut oracle, &config);
        assert_eq!(outcome.key, None, "countermeasure must block recovery");
    }

    #[test]
    fn masked_schedule_countermeasure_defeats_recovery() {
        let secret = Key::from_u128(0x9999_8888_7777_6666_5555_4444_3333_2222);
        let cfg = ObservationConfig {
            variant: VictimVariant::MaskedSchedule,
            ..ObservationConfig::ideal()
        };
        let mut oracle = VictimOracle::new(secret, cfg);
        let outcome = recover_full_key(&mut oracle, &AttackConfig::new());
        // The stages recover *masked* round keys; reassembly and
        // verification against the true cipher pair must fail.
        assert_eq!(outcome.key, None);
    }
}
