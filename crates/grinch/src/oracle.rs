//! Step 2 — probing the cache: the attacker's observation interface.
//!
//! [`VictimOracle`] wraps a secret-keyed victim cipher, a shared cache and a
//! probing configuration, and lets the attacker do exactly what the paper's
//! threat model allows: submit a plaintext for encryption and learn which
//! S-box *cache lines* were resident when the probe fired — nothing else.
//!
//! Two classical probe mechanics are implemented with real cache state:
//!
//! * **Flush+Reload** — the attacker flushes the S-box lines before the
//!   encryption, then reloads each line and classifies hit/miss by timing;
//! * **Prime+Probe** — the attacker fills the cache sets the S-box maps to
//!   with its own lines, then re-reads them and infers victim activity from
//!   its own misses.
//!
//! The probing *moment* follows the paper's Fig. 3 convention: "cache
//! probing round k" means the probe observes the accesses of rounds
//! `1..=k+1` (the probe fires while the victim executes round `k + 1`,
//! i.e. right after round `k` finished); the optional flush after round 1
//! removes the key-independent first-round accesses ("Grinch with Flush").

use crate::noise::NoiseChannel;
use crate::target::TargetSpec;
use cache_sim::{Cache, CacheConfig, Domain};
use gift_cipher::countermeasure::{
    masked_round_keys_64, FullScanGift64, PreloadGift64, WideLineGift64,
};
use gift_cipher::{Key, MemoryObserver, NullObserver, TableGift64, TableLayout, GIFT64_ROUNDS};
use std::collections::BTreeSet;

/// Which probe mechanic the attacker uses (paper Step 2 discusses both and
/// prefers Flush+Reload).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProbeStrategy {
    /// Flush the monitored lines, reload and time them after the victim ran.
    #[default]
    FlushReload,
    /// Fill the monitored sets with attacker lines and detect evictions.
    PrimeProbe,
}

/// Which victim implementation the oracle runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum VictimVariant {
    /// The vulnerable lookup-table GIFT-64 (the paper's target).
    #[default]
    Table,
    /// Countermeasure 1 (paper §IV-C): the 8×8-bit reshaped S-box.
    WideLine,
    /// Countermeasure 2 (paper §IV-C): the masked `UpdateKey` schedule.
    MaskedSchedule,
    /// Classic software mitigation: every lookup scans the whole table, so
    /// the address stream is data-independent (16× read overhead).
    FullScan,
    /// Classic software mitigation: the whole table is touched at the start
    /// of every round, so all lines are always resident when probed.
    Preload,
}

/// The attacker-visible observation setup.
#[derive(Clone, Debug)]
pub struct ObservationConfig {
    /// Shared-cache geometry.
    pub cache: CacheConfig,
    /// Placement of the victim's tables.
    pub layout: TableLayout,
    /// The paper's "cache probing round": the probe sees rounds
    /// `1..=probing_round + 1`.
    pub probing_round: usize,
    /// Whether the attacker flushes the cache right after round 1
    /// ("Grinch with Flush").
    pub flush_after_round1: bool,
    /// Probe mechanic.
    pub strategy: ProbeStrategy,
    /// Victim implementation.
    pub variant: VictimVariant,
}

impl ObservationConfig {
    /// The paper's best case: probing round 1 with flush, one word per
    /// line, Flush+Reload.
    pub fn ideal() -> Self {
        Self {
            cache: CacheConfig::grinch_default(),
            layout: TableLayout::default(),
            probing_round: 1,
            flush_after_round1: true,
            strategy: ProbeStrategy::FlushReload,
            variant: VictimVariant::Table,
        }
    }

    /// Sets the probing round.
    pub fn with_probing_round(mut self, round: usize) -> Self {
        self.probing_round = round;
        self
    }

    /// Enables or disables the flush after round 1.
    pub fn with_flush(mut self, flush: bool) -> Self {
        self.flush_after_round1 = flush;
        self
    }

    /// Sets the line size in 8-bit words, preserving total cache capacity
    /// (the Table I sweep).
    pub fn with_words_per_line(mut self, words: usize) -> Self {
        self.cache = self.cache.with_words_per_line(words);
        self
    }

    /// Base addresses of the cache lines covering the S-box table.
    pub fn probe_line_addrs(&self) -> Vec<u64> {
        let lb = self.cache.line_bytes as u64;
        let span = self.sbox_span_bytes();
        let first = self.layout.sbox_base / lb;
        let last = (self.layout.sbox_base + span - 1) / lb;
        (first..=last).map(|l| l * lb).collect()
    }

    /// Byte address of the line containing S-box index `index`.
    pub fn line_addr_of_index(&self, index: u8) -> u64 {
        let lb = self.cache.line_bytes as u64;
        let addr = match self.variant {
            // The wide-line S-box stores two entries per byte.
            VictimVariant::WideLine => self.layout.sbox_base + u64::from(index >> 1),
            _ => self.layout.sbox_entry_addr(index),
        };
        // line_bytes is a validated power of two: align with a mask, not a
        // divide (this runs per candidate-elimination check).
        addr & !(lb - 1)
    }

    /// Index of a monitored line within [`ObservationConfig::probe_line_addrs`]
    /// (0 = the line holding S-box entry 0). `None` for addresses outside
    /// the monitored range.
    pub fn line_index_of_addr(&self, addr: u64) -> Option<usize> {
        let lb = self.cache.line_bytes as u64;
        let first = self.layout.sbox_base / lb;
        let line = addr / lb;
        let count = ((self.layout.sbox_base + self.sbox_span_bytes() - 1) / lb) + 1 - first;
        (line >= first && line - first < count).then(|| (line - first) as usize)
    }

    fn sbox_span_bytes(&self) -> u64 {
        match self.variant {
            VictimVariant::WideLine => 8,
            _ => 16,
        }
    }
}

impl Default for ObservationConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// The set of S-box line base addresses a probe found resident.
pub type ObservedLines = BTreeSet<u64>;

/// Nominal simulated duration of one GIFT round in nanoseconds, used to
/// advance the telemetry clock per observed encryption (100 cycles per
/// round at the paper's 10 MHz baseline). Spans and JSONL timestamps are
/// expressed in this simulated time, never wall time.
pub const SIM_ROUND_NS: u64 = 10_000;

enum VictimCipher {
    Table(TableGift64),
    WideLine(WideLineGift64),
    FullScan(FullScanGift64),
    Preload(PreloadGift64),
}

fn run_one_round<O: MemoryObserver + ?Sized>(
    cipher: &VictimCipher,
    state: u64,
    round: usize,
    obs: &mut O,
) -> u64 {
    match cipher {
        VictimCipher::Table(c) => c.run_single_round(state, round, obs),
        VictimCipher::WideLine(c) => c.run_single_round(state, round, obs),
        VictimCipher::FullScan(c) => c.run_single_round(state, round, obs),
        VictimCipher::Preload(c) => c.run_single_round(state, round, obs),
    }
}

/// Records a round's table-read addresses so they can be replayed into the
/// cache as one batch. The cipher's data flow never depends on the cache,
/// and the attacker only acts *between* rounds, so replaying a single
/// round's reads in program order at round end is state-identical to
/// forwarding each read immediately — only the telemetry publication is
/// amortized.
struct RoundAddrRecorder<'a> {
    addrs: &'a mut Vec<u64>,
}

impl MemoryObserver for RoundAddrRecorder<'_> {
    fn on_read(&mut self, access: gift_cipher::observer::Access) {
        self.addrs.push(access.addr);
    }
}

/// The victim plus the shared cache plus the probe: everything the attacker
/// interacts with.
///
/// The secret key lives inside; the attacker-facing methods are
/// [`VictimOracle::observe`] (one chosen-plaintext encryption, returning the
/// probed line set) and [`VictimOracle::known_pair`] (one chosen-plaintext
/// encryption returning the ciphertext, used to verify a recovered key).
/// Both count towards [`VictimOracle::encryptions`] — the effort metric of
/// every experiment in the paper.
pub struct VictimOracle {
    cipher: VictimCipher,
    cache: Cache,
    config: ObservationConfig,
    encryptions: u64,
    /// Monitored S-box line base addresses, computed once at construction
    /// so the per-observation path never rebuilds the probe list.
    probe_addrs: Vec<u64>,
    /// Attacker-owned addresses used by Prime+Probe, one group per
    /// monitored set.
    prime_groups: Vec<(u64, Vec<u64>)>,
    telemetry: grinch_telemetry::Telemetry,
    /// `Some` iff telemetry is enabled: the campaign-total counters.
    metrics: Option<AttackMetricHandles>,
    /// Per-stage handle sets, indexed by stage round and registered on
    /// first use, so the per-observation hot path neither formats names
    /// nor hashes them.
    stage_metrics: Vec<Option<StageMetricHandles>>,
    /// Optional false-absence channel applied to every observation before
    /// the attacker (and the telemetry feed) sees it.
    noise: Option<NoiseChannel>,
    /// Scratch observation buffer backing
    /// [`VictimOracle::encrypt_and_probe_batch`]; reused across batches.
    batch: Vec<ObservedLines>,
    /// Scratch address buffer for one victim round's table reads, replayed
    /// into the cache as a batch (see [`VictimOracle::run_rounds_observed`]).
    round_addrs: Vec<u64>,
}

/// Campaign-total counters, registered once at
/// [`VictimOracle::set_telemetry`].
#[derive(Clone, Copy, Debug)]
struct AttackMetricHandles {
    encryptions: grinch_telemetry::CounterHandle,
    probes: grinch_telemetry::CounterHandle,
    probe_hits: grinch_telemetry::CounterHandle,
}

impl AttackMetricHandles {
    fn register(telemetry: &grinch_telemetry::Telemetry) -> Self {
        Self {
            encryptions: telemetry.register_counter("attack.encryptions"),
            probes: telemetry.register_counter("attack.probes"),
            probe_hits: telemetry.register_counter("attack.probe_hits"),
        }
    }
}

/// Pre-registered counter slots for one stage's observability feed: the
/// per-line probe-hit counters (`attack.stage<r>.line_hits.l<idx>.s<set>`)
/// the leakage heatmap is built from, plus per-stage probe/encryption
/// totals. Names are rendered exactly once, at registration.
struct StageMetricHandles {
    probes: grinch_telemetry::CounterHandle,
    probe_hits: grinch_telemetry::CounterHandle,
    encryptions: grinch_telemetry::CounterHandle,
    /// Indexed by monitored-line index (see
    /// [`ObservationConfig::line_index_of_addr`]); the name carries both
    /// the line index and the cache set it maps to.
    line_hits: Vec<grinch_telemetry::CounterHandle>,
}

impl StageMetricHandles {
    fn register(
        telemetry: &grinch_telemetry::Telemetry,
        config: &ObservationConfig,
        stage_round: usize,
    ) -> Self {
        let line_hits = config
            .probe_line_addrs()
            .iter()
            .map(|&addr| {
                telemetry.register_counter(&format!(
                    "attack.stage{stage_round}.line_hits.l{:02}.s{:03}",
                    config.line_index_of_addr(addr).expect("monitored line"),
                    config.cache.set_of(addr)
                ))
            })
            .collect();
        Self {
            probes: telemetry.register_counter(&format!("attack.stage{stage_round}.probes")),
            probe_hits: telemetry
                .register_counter(&format!("attack.stage{stage_round}.probe_hits")),
            encryptions: telemetry
                .register_counter(&format!("attack.stage{stage_round}.encryptions")),
            line_hits,
        }
    }
}

impl VictimOracle {
    /// Creates an oracle around a victim keyed with `key`.
    pub fn new(key: Key, config: ObservationConfig) -> Self {
        Self::build(key, config, None)
    }

    /// Like [`VictimOracle::new`], but the shared cache's per-set
    /// replacement RNG derives from `cache_seed` (see
    /// [`Cache::new_seeded`]) — required for reproducible campaigns under
    /// `ReplacementPolicy::Random`, e.g. the arena's parallel trials.
    pub fn new_seeded(key: Key, config: ObservationConfig, cache_seed: u64) -> Self {
        Self::build(key, config, Some(cache_seed))
    }

    fn build(key: Key, config: ObservationConfig, cache_seed: Option<u64>) -> Self {
        config
            .cache
            .validate()
            .expect("invalid cache configuration");
        assert!(
            config.probing_round >= 1 && config.probing_round < GIFT64_ROUNDS,
            "probing round must be in 1..28"
        );
        let cipher = match config.variant {
            VictimVariant::Table => VictimCipher::Table(TableGift64::new(key, config.layout)),
            VictimVariant::WideLine => {
                VictimCipher::WideLine(WideLineGift64::new(key, config.layout))
            }
            VictimVariant::MaskedSchedule => VictimCipher::Table(TableGift64::from_round_keys(
                masked_round_keys_64(key),
                config.layout,
            )),
            VictimVariant::FullScan => {
                VictimCipher::FullScan(FullScanGift64::new(key, config.layout))
            }
            VictimVariant::Preload => VictimCipher::Preload(PreloadGift64::new(key, config.layout)),
        };
        let cache = match cache_seed {
            Some(seed) => Cache::new_seeded(config.cache, seed),
            None => Cache::new(config.cache),
        };
        let prime_groups = Self::build_prime_groups(&config);
        let probe_addrs = config.probe_line_addrs();
        Self {
            cipher,
            cache,
            config,
            encryptions: 0,
            probe_addrs,
            prime_groups,
            telemetry: grinch_telemetry::Telemetry::disabled(),
            metrics: None,
            stage_metrics: Vec::new(),
            noise: None,
            batch: Vec::new(),
            round_addrs: Vec::new(),
        }
    }

    /// Installs a false-absence noise channel: every subsequent observation
    /// is filtered through it before the attacker sees the line set (the
    /// arena's noise axis). Pass `None` to remove.
    pub fn set_noise(&mut self, noise: Option<NoiseChannel>) {
        self.noise = noise;
    }

    /// Attaches a telemetry handle: the shared cache publishes `cache.l1.*`
    /// counters, every observed encryption advances the simulated clock by
    /// [`SIM_ROUND_NS`] per executed round, and probes are counted under
    /// `attack.probes` / `attack.probe_hits` / `attack.encryptions`.
    pub fn set_telemetry(&mut self, telemetry: grinch_telemetry::Telemetry) {
        self.cache.set_telemetry(telemetry.clone(), "cache.l1");
        self.metrics = telemetry
            .is_enabled()
            .then(|| AttackMetricHandles::register(&telemetry));
        // Stage handles index the *previous* registry; drop them so they
        // re-register lazily against the new one.
        self.stage_metrics.clear();
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &grinch_telemetry::Telemetry {
        &self.telemetry
    }

    /// The observation configuration.
    pub fn config(&self) -> &ObservationConfig {
        &self.config
    }

    /// Total victim encryptions triggered so far (the paper's effort
    /// metric).
    pub fn encryptions(&self) -> u64 {
        self.encryptions
    }

    /// Attacker addresses that map to the same cache sets as the S-box
    /// lines, `ways` of them per set, placed far above the victim's tables.
    fn build_prime_groups(config: &ObservationConfig) -> Vec<(u64, Vec<u64>)> {
        let cache = &config.cache;
        let stride = (cache.line_bytes * cache.num_sets) as u64;
        let attacker_base = 0x10_0000u64;
        config
            .probe_line_addrs()
            .into_iter()
            .map(|line_addr| {
                let set = cache.set_of(line_addr) as u64;
                let addrs = (0..cache.ways as u64)
                    .map(|w| attacker_base + w * stride + set * cache.line_bytes as u64)
                    .collect();
                (line_addr, addrs)
            })
            .collect()
    }

    fn run_rounds(&mut self, plaintext: u64, rounds: usize) -> u64 {
        let mut state = plaintext;
        for round in 0..rounds {
            let mut obs = NullObserver;
            state = run_one_round(&self.cipher, state, round, &mut obs);
        }
        state
    }

    fn prime(&mut self) {
        // Field-disjoint borrows: the groups are read-only while the cache
        // mutates, so no per-call clone of the group table is needed.
        let Self {
            cache,
            prime_groups,
            ..
        } = self;
        for (_, addrs) in prime_groups.iter() {
            // One batched fill (and one telemetry publish) per monitored set.
            cache.access_batch_from(addrs, Domain::Attacker, |_, _| {});
        }
    }

    /// Ensures the stage-`stage_round` handle set is registered.
    fn ensure_stage_handles(&mut self, stage_round: usize) {
        if self.stage_metrics.len() <= stage_round {
            self.stage_metrics.resize_with(stage_round + 1, || None);
        }
        if self.stage_metrics[stage_round].is_none() {
            self.stage_metrics[stage_round] = Some(StageMetricHandles::register(
                &self.telemetry,
                &self.config,
                stage_round,
            ));
        }
    }

    /// Submits one chosen plaintext, lets the victim run up to the probing
    /// moment for a **stage-1** campaign, and returns the set of S-box
    /// lines the probe found resident.
    ///
    /// Shorthand for [`VictimOracle::observe_stage`] with `stage_round = 1`.
    pub fn observe(&mut self, plaintext: u64) -> ObservedLines {
        self.observe_stage(plaintext, 1)
    }

    /// One observed encryption for a stage-`stage_round` campaign (paper
    /// Step 5 — "change target round").
    ///
    /// The signal is round `stage_round + 1`'s S-box accesses, so the probe
    /// fires while the victim executes round `stage_round +
    /// probing_round`; the optional flush happens right after round
    /// `stage_round` (for stage 1 that is the paper's flush after round 1),
    /// removing the accesses of the already-known earlier rounds. For
    /// Prime+Probe the flush is a flush-plus-re-prime, the mechanic an
    /// attacker without a flush instruction uses.
    pub fn observe_stage(&mut self, plaintext: u64, stage_round: usize) -> ObservedLines {
        let mut out = ObservedLines::new();
        self.observe_stage_into(plaintext, stage_round, &mut out);
        out
    }

    /// [`VictimOracle::observe_stage`] writing into a caller-provided set
    /// (cleared first) — the allocation-free core both the single and the
    /// batched paths share.
    pub fn observe_stage_into(
        &mut self,
        plaintext: u64,
        stage_round: usize,
        out: &mut ObservedLines,
    ) {
        out.clear();
        self.encryptions += 1;
        let rounds = (stage_round + self.config.probing_round).min(GIFT64_ROUNDS);
        if let Some(m) = self.metrics {
            self.telemetry.inc(m.encryptions);
            self.telemetry.advance_time_ns(rounds as u64 * SIM_ROUND_NS);
        }
        let flush_before = self.config.flush_after_round1.then_some(stage_round);
        match self.config.strategy {
            ProbeStrategy::FlushReload => {
                // Flush phase: evict the monitored lines in one batched
                // sweep (single telemetry publish). All probe-side
                // operations run in the attacker domain: a way partition
                // blocks both the flush and the reload-hit, blinding the
                // mechanic entirely.
                {
                    let Self {
                        cache, probe_addrs, ..
                    } = self;
                    cache.flush_lines_from(probe_addrs, Domain::Attacker);
                }
                self.run_rounds_observed(plaintext, rounds, flush_before, false);
                // Reload phase: a hit means the victim brought the line in;
                // each line is flushed again right after its reload so the
                // next observation starts cold — one batched cycle.
                let Self {
                    cache, probe_addrs, ..
                } = self;
                cache.reload_and_flush_from(probe_addrs, Domain::Attacker, |a, hit| {
                    if hit {
                        out.insert(a);
                    }
                });
            }
            ProbeStrategy::PrimeProbe => {
                // Prime phase: fill each monitored set with attacker lines.
                self.prime();
                self.run_rounds_observed(plaintext, rounds, flush_before, true);
                // Probe phase: re-read the attacker lines; any miss means
                // the victim displaced one — its set was touched.
                let Self {
                    cache,
                    prime_groups,
                    ..
                } = self;
                for (line_addr, addrs) in prime_groups.iter() {
                    let mut evicted = false;
                    cache.access_batch_from(addrs, Domain::Attacker, |_, o| {
                        if o.is_miss() {
                            evicted = true;
                        }
                    });
                    if evicted {
                        out.insert(*line_addr);
                    }
                }
                // Clean up: leave the monitored sets empty of victim lines
                // for the next round of priming. An attacker-domain flush:
                // on a partitioned cache only its own ways clear, which is
                // all the mechanic needs (victim lines never evict primes
                // there anyway).
                self.cache.flush_all_from(Domain::Attacker);
            }
        }
        if let Some(channel) = self.noise.as_mut() {
            *out = channel.apply(std::mem::take(out));
        }
        if let Some(m) = self.metrics {
            let probes = self.probe_addrs.len() as u64;
            // Per-stage feed for the leakage profiler (`grinch-obs`):
            // which monitored lines lit up, keyed by line index and set.
            self.ensure_stage_handles(stage_round);
            let stage = self.stage_metrics[stage_round]
                .as_ref()
                .expect("just registered");
            if let Some(mut b) = self.telemetry.batch() {
                b.add(m.probes, probes);
                b.add(m.probe_hits, out.len() as u64);
                b.add(stage.probes, probes);
                b.add(stage.probe_hits, out.len() as u64);
                b.inc(stage.encryptions);
                for &addr in out.iter() {
                    if let Some(idx) = self.config.line_index_of_addr(addr) {
                        b.inc(stage.line_hits[idx]);
                    }
                }
            }
        }
    }

    /// Observes one chosen plaintext per entry of `plaintexts` for a
    /// stage-`stage_round` campaign and returns the observations in order.
    ///
    /// Equivalent to calling [`VictimOracle::observe_stage`] in a loop, but
    /// the returned slice borrows an internal scratch buffer that is reused
    /// across batches (grown once, never shrunk) and the per-stage metric
    /// handles resolve exactly once — the bulk path for Monte-Carlo sweeps
    /// that replay fixed plaintext schedules.
    pub fn encrypt_and_probe_batch(
        &mut self,
        plaintexts: &[u64],
        stage_round: usize,
    ) -> &[ObservedLines] {
        if self.batch.len() < plaintexts.len() {
            self.batch.resize_with(plaintexts.len(), ObservedLines::new);
        }
        for (i, &pt) in plaintexts.iter().enumerate() {
            let mut out = std::mem::take(&mut self.batch[i]);
            self.observe_stage_into(pt, stage_round, &mut out);
            self.batch[i] = out;
        }
        &self.batch[..plaintexts.len()]
    }

    /// Runs the victim's first `rounds` rounds against the cache; before
    /// executing round index `flush_before` (0-based) the attacker's
    /// mid-encryption cleanup runs — a cache flush, plus a re-prime when
    /// the mechanic is Prime+Probe.
    fn run_rounds_observed(
        &mut self,
        plaintext: u64,
        rounds: usize,
        flush_before: Option<usize>,
        reprime: bool,
    ) -> u64 {
        let mut state = plaintext;
        let mut round_addrs = std::mem::take(&mut self.round_addrs);
        for round in 0..rounds {
            if flush_before == Some(round) {
                // The mid-encryption flush is the *attacker's* cleanup: on a
                // way-partitioned cache it cannot reach victim ways, so
                // "Grinch with Flush" loses its lever there too.
                self.cache.flush_all_from(Domain::Attacker);
                if reprime {
                    self.prime();
                }
            }
            round_addrs.clear();
            let mut obs = RoundAddrRecorder {
                addrs: &mut round_addrs,
            };
            state = run_one_round(&self.cipher, state, round, &mut obs);
            self.cache
                .access_batch_from(&round_addrs, Domain::Victim, |_, _| {});
        }
        self.round_addrs = round_addrs;
        state
    }

    /// Triggers one full encryption and returns the ciphertext (the known
    /// plaintext/ciphertext pair the attacker uses to verify a recovered
    /// key). Counts as one encryption.
    pub fn known_pair(&mut self, plaintext: u64) -> u64 {
        self.encryptions += 1;
        if let Some(m) = self.metrics {
            self.telemetry.inc(m.encryptions);
            self.telemetry
                .advance_time_ns(GIFT64_ROUNDS as u64 * SIM_ROUND_NS);
        }
        self.run_rounds(plaintext, GIFT64_ROUNDS)
    }

    /// Whether the observation in `observed` is *consistent* with the
    /// round-key-bit hypothesis `(v_bit, u_bit)` for `spec`: the line the
    /// hypothesis predicts must be present (absence refutes it).
    pub fn hypothesis_consistent(
        &self,
        spec: &TargetSpec,
        observed: &ObservedLines,
        v_bit: bool,
        u_bit: bool,
    ) -> bool {
        let idx = spec.expected_index(v_bit, u_bit);
        observed.contains(&self.config.line_addr_of_index(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gift_cipher::bitwise::Gift64;
    use gift_cipher::state::segment_64;

    fn key() -> Key {
        Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0)
    }

    #[test]
    fn flush_reload_with_flush_sees_exactly_round2_lines() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let pt = 0x0123_4567_89ab_cdef;
        let observed = oracle.observe(pt);
        // Ground truth: round-2 S-box indices are the nibbles of the round-2
        // input.
        let reference = Gift64::new(key());
        let round2_input = reference.encrypt_rounds(pt, 1);
        let expected: ObservedLines = (0..16)
            .map(|s| {
                oracle
                    .config()
                    .line_addr_of_index(segment_64(round2_input, s))
            })
            .collect();
        assert_eq!(observed, expected);
        assert_eq!(oracle.encryptions(), 1);
    }

    #[test]
    fn without_flush_round1_lines_are_included_too() {
        let cfg = ObservationConfig::ideal().with_flush(false);
        let mut oracle = VictimOracle::new(key(), cfg);
        let pt = 0xfedc_ba98_7654_3210;
        let observed = oracle.observe(pt);
        let reference = Gift64::new(key());
        let r1 = pt;
        let r2 = reference.encrypt_rounds(pt, 1);
        let mut expected = ObservedLines::new();
        for s in 0..16 {
            expected.insert(oracle.config().line_addr_of_index(segment_64(r1, s)));
            expected.insert(oracle.config().line_addr_of_index(segment_64(r2, s)));
        }
        assert_eq!(observed, expected);
    }

    #[test]
    fn deeper_probing_rounds_accumulate_more_lines() {
        let pt = 0x1111_2222_3333_4444;
        let shallow = VictimOracle::new(key(), ObservationConfig::ideal()).observe(pt);
        let deep =
            VictimOracle::new(key(), ObservationConfig::ideal().with_probing_round(6)).observe(pt);
        assert!(deep.is_superset(&shallow));
        assert!(deep.len() >= shallow.len());
    }

    #[test]
    fn prime_probe_agrees_with_flush_reload_at_set_granularity() {
        let pt = 0x5a5a_5a5a_a5a5_a5a5;
        let fr_cfg = ObservationConfig::ideal();
        let pp_cfg = ObservationConfig {
            strategy: ProbeStrategy::PrimeProbe,
            ..ObservationConfig::ideal()
        };
        let fr = VictimOracle::new(key(), fr_cfg).observe(pt);
        let pp = VictimOracle::new(key(), pp_cfg).observe(pt);
        // With the default geometry each S-box line maps to its own set, so
        // the two mechanics must observe the same lines.
        assert_eq!(fr, pp);
    }

    #[test]
    fn observations_are_repeatable_for_same_plaintext() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let a = oracle.observe(42);
        let b = oracle.observe(42);
        assert_eq!(a, b);
        assert_eq!(oracle.encryptions(), 2);
    }

    #[test]
    fn coarse_lines_merge_observations() {
        let pt = 0x1234_5678_9abc_def0;
        let fine = VictimOracle::new(key(), ObservationConfig::ideal()).observe(pt);
        let coarse_cfg = ObservationConfig::ideal().with_words_per_line(8);
        let coarse = VictimOracle::new(key(), coarse_cfg).observe(pt);
        assert!(coarse.len() <= fine.len());
        assert!(
            coarse.len() <= 3,
            "misaligned 16B table spans <= 3 8B lines"
        );
    }

    #[test]
    fn wide_line_victim_touches_single_aligned_line() {
        let cfg = ObservationConfig {
            layout: TableLayout::new(0x400), // 8-byte aligned
            cache: CacheConfig::grinch_default().with_words_per_line(8),
            variant: VictimVariant::WideLine,
            ..ObservationConfig::ideal()
        };
        let mut oracle = VictimOracle::new(key(), cfg);
        let observed = oracle.observe(0xdead_beef);
        assert_eq!(observed.len(), 1, "whole table in one line leaks nothing");
    }

    #[test]
    fn known_pair_returns_true_ciphertext_for_table_variant() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let pt = 0x2468_ace0_1357_9bdf;
        let ct = oracle.known_pair(pt);
        assert_eq!(ct, Gift64::new(key()).encrypt(pt));
    }

    #[test]
    fn masked_variant_ciphertext_differs_from_plain_gift() {
        let cfg = ObservationConfig {
            variant: VictimVariant::MaskedSchedule,
            ..ObservationConfig::ideal()
        };
        let mut oracle = VictimOracle::new(key(), cfg);
        let pt = 0x2468_ace0_1357_9bdf;
        assert_ne!(oracle.known_pair(pt), Gift64::new(key()).encrypt(pt));
    }

    #[test]
    fn way_partition_blinds_both_probe_mechanics() {
        // Both mechanics become information-free, each in its own way:
        // Flush+Reload reloads can never hit victim lines (empty set),
        // while Prime+Probe self-thrashes — 16 prime lines in 8 attacker
        // ways — so every set always reports "touched" (saturated set).
        // Either way the observation is independent of the plaintext.
        let partition = cache_sim::WayPartition::even_split(16);
        for strategy in [ProbeStrategy::FlushReload, ProbeStrategy::PrimeProbe] {
            let cfg = ObservationConfig {
                cache: CacheConfig::grinch_default().with_partition(partition),
                strategy,
                ..ObservationConfig::ideal()
            };
            let all_lines: ObservedLines = cfg.probe_line_addrs().into_iter().collect();
            let mut oracle = VictimOracle::new(key(), cfg);
            for pt in [0u64, 0x0123_4567_89ab_cdef, u64::MAX] {
                let observed = oracle.observe(pt);
                match strategy {
                    ProbeStrategy::FlushReload => {
                        assert!(observed.is_empty(), "reload hit a victim line")
                    }
                    ProbeStrategy::PrimeProbe => {
                        assert_eq!(observed, all_lines, "probe must saturate")
                    }
                }
            }
        }
    }

    #[test]
    fn aggressive_rekeying_injects_false_absences() {
        // With an epoch far shorter than one observation's access count,
        // rekey invalidations hit mid-encryption and the reload phase sees
        // strictly fewer lines than the undefended oracle.
        let pt = 0x0123_4567_89ab_cdef;
        let clean = VictimOracle::new(key(), ObservationConfig::ideal()).observe(pt);
        let cfg = ObservationConfig {
            cache: CacheConfig::grinch_default().with_mapping(
                cache_sim::IndexMapping::KeyedRemap {
                    key: 0x5eed,
                    epoch_accesses: 16,
                },
            ),
            ..ObservationConfig::ideal()
        };
        let defended = VictimOracle::new(key(), cfg).observe(pt);
        assert!(
            defended.len() < clean.len(),
            "rekeying every 16 accesses must drop lines ({} vs {})",
            defended.len(),
            clean.len()
        );
    }

    #[test]
    fn static_keyed_remap_leaves_flush_reload_intact() {
        // Flush+Reload works on addresses, not set indices: a permutation
        // without epochs changes placement but not observability.
        let pt = 0x0123_4567_89ab_cdef;
        let clean = VictimOracle::new(key(), ObservationConfig::ideal()).observe(pt);
        let cfg = ObservationConfig {
            cache: CacheConfig::grinch_default().with_mapping(
                cache_sim::IndexMapping::KeyedRemap {
                    key: 0x5eed,
                    epoch_accesses: 0,
                },
            ),
            ..ObservationConfig::ideal()
        };
        let defended = VictimOracle::new(key(), cfg).observe(pt);
        assert_eq!(defended, clean);
    }

    #[test]
    fn installed_noise_channel_filters_observations() {
        let pt = 0x0123_4567_89ab_cdef;
        let clean = VictimOracle::new(key(), ObservationConfig::ideal()).observe(pt);
        let mut noisy_oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        noisy_oracle.set_noise(Some(crate::noise::NoiseChannel::new(1.0, 9)));
        assert!(noisy_oracle.observe(pt).is_empty(), "p=1 drops everything");
        noisy_oracle.set_noise(None);
        assert_eq!(noisy_oracle.observe(pt), clean, "removal restores clarity");
    }

    #[test]
    fn batch_path_matches_looped_observe_and_telemetry() {
        let pts = [0u64, 42, 0x0123_4567_89ab_cdef, u64::MAX, 42];
        for strategy in [ProbeStrategy::FlushReload, ProbeStrategy::PrimeProbe] {
            let cfg = ObservationConfig {
                strategy,
                ..ObservationConfig::ideal()
            };
            let loop_tel = grinch_telemetry::Telemetry::new();
            let mut loop_oracle = VictimOracle::new(key(), cfg.clone());
            loop_oracle.set_telemetry(loop_tel.clone());
            let looped: Vec<ObservedLines> = pts
                .iter()
                .map(|&pt| loop_oracle.observe_stage(pt, 2))
                .collect();

            let batch_tel = grinch_telemetry::Telemetry::new();
            let mut batch_oracle = VictimOracle::new(key(), cfg);
            batch_oracle.set_telemetry(batch_tel.clone());
            let batched = batch_oracle.encrypt_and_probe_batch(&pts, 2);

            assert_eq!(batched, looped.as_slice());
            assert_eq!(batch_oracle.encryptions(), loop_oracle.encryptions());
            assert_eq!(
                batch_tel.to_jsonl(),
                loop_tel.to_jsonl(),
                "batched and looped paths must publish identical telemetry"
            );
        }
    }

    #[test]
    fn batch_scratch_is_reused_across_calls() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let first = oracle.encrypt_and_probe_batch(&[1, 2, 3], 1).to_vec();
        // A smaller follow-up batch only exposes its own observations.
        let second = oracle.encrypt_and_probe_batch(&[1], 1);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0], first[0]);
        assert_eq!(oracle.encryptions(), 4);
    }

    #[test]
    fn hypothesis_consistency_matches_truth() {
        let mut oracle = VictimOracle::new(key(), ObservationConfig::ideal());
        let spec = TargetSpec::new(1, 6);
        let rk = Gift64::new(key()).round_keys()[0];
        let v = (rk.v >> 6) & 1 == 1;
        let u = (rk.u >> 6) & 1 == 1;
        let mut rng = rand::rngs::mock::StepRng::new(0x12345, 0x9e3779b97f4a7c15);
        let pt = crate::craft::craft_plaintext(&[spec], &[], &mut rng).unwrap();
        let observed = oracle.observe(pt);
        assert!(oracle.hypothesis_consistent(&spec, &observed, v, u));
    }
}
