//! # grinch
//!
//! A from-scratch reproduction of **GRINCH**, the access-driven cache attack
//! on the GIFT lightweight cipher (Reinbrecht, Aljuffri, Hamdioui, Taouil,
//! Sepúlveda — DATE 2021).
//!
//! GRINCH recovers the full 128-bit GIFT-64 key in four stages, one per
//! round. Stage *t* crafts plaintexts that pin a chosen S-box index of round
//! *t + 1* to a constant (modulo the two unknown key bits that round *t*'s
//! `AddRoundKey` XORs into it), observes which S-box cache lines the victim
//! touches, eliminates candidate indices that are absent from some
//! encryption, and inverts the surviving index into two key bits — 32 bits
//! per stage across the 16 state segments.
//!
//! The crate is organised along the paper's five methodology steps:
//!
//! | Paper step | Module |
//! |---|---|
//! | Step 1 — generate plaintext + encrypt | [`target`] (Algorithm 1), [`craft`] (Algorithm 2) |
//! | Step 2 — probe the cache | [`oracle`] (Flush+Reload / Prime+Probe over `cache-sim`) |
//! | Step 3 — eliminate candidates | [`eliminate`] |
//! | Step 4 — reverse-engineer key bits | [`target::TargetSpec::key_bits_from_index`] and [`eliminate`] |
//! | Step 5 — update plaintext generation | [`stage`], [`attack`] |
//!
//! The experiment drivers regenerating the paper's figures and tables live
//! in [`experiments`]. Beyond the paper's evaluation, the crate carries:
//! [`gift128`] (the attack on GIFT-128 — two stages recover the whole
//! key), [`platform_attack`] (the stage logic driven end-to-end by the
//! MPSoC co-simulation), [`noise`] (false-absence channels and a
//! noise-robust sequential recovery), [`baselines`] (time-driven and
//! trace-driven attack classes for comparison) and [`analysis`] (a
//! closed-form effort model for the Fig. 3 / Table I shapes).
//!
//! ```
//! use grinch::attack::{recover_full_key, AttackConfig};
//! use grinch::oracle::{ObservationConfig, VictimOracle};
//! use gift_cipher::Key;
//!
//! let secret = Key::from_u128(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
//! let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
//! let result = recover_full_key(&mut oracle, &AttackConfig::default());
//! assert_eq!(result.key, Some(secret));
//! ```

pub mod analysis;
pub mod attack;
pub mod baselines;
pub mod craft;
pub mod eliminate;
pub mod experiments;
pub mod gift128;
pub mod noise;
pub mod oracle;
pub mod platform_attack;
pub mod stage;
pub mod target;

pub use attack::{recover_full_key, AttackConfig, AttackOutcome};
pub use oracle::{ObservationConfig, ProbeStrategy, VictimOracle};
pub use target::TargetSpec;
