//! Property-based tests of the attack machinery: the crafting/prediction
//! pipeline must hold for arbitrary keys, segments, stages and forced
//! patterns — the soundness foundation of candidate elimination.

use gift_cipher::bitwise::Gift64;
use gift_cipher::state::segment_64;
use gift_cipher::Key;
use grinch::craft::craft_plaintext;
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch::target::{disjoint_batches, TargetSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crafted_index_always_matches_prediction(
        key in any::<u128>(),
        segment in 0usize..16,
        stage in 1usize..=4,
        pattern in 0u8..16,
        seed in any::<u64>(),
    ) {
        let k = Key::from_u128(key);
        let cipher = Gift64::new(k);
        let known = &cipher.round_keys()[..stage - 1];
        let rk = cipher.round_keys()[stage - 1];
        let spec = TargetSpec::with_forced_pattern(stage, segment, pattern);
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = craft_plaintext(&[spec], known, &mut rng).unwrap();
        let round_input = cipher.encrypt_rounds(pt, stage);
        let v = (rk.v >> segment) & 1 == 1;
        let u = (rk.u >> segment) & 1 == 1;
        prop_assert_eq!(segment_64(round_input, segment), spec.expected_index(v, u));
    }

    #[test]
    fn batched_crafting_pins_all_batch_targets(
        key in any::<u128>(),
        stage in 1usize..=4,
        batch_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let k = Key::from_u128(key);
        let cipher = Gift64::new(k);
        let known = &cipher.round_keys()[..stage - 1];
        let rk = cipher.round_keys()[stage - 1];
        let batch = disjoint_batches(stage)[batch_idx];
        let specs: Vec<TargetSpec> =
            batch.iter().map(|&s| TargetSpec::new(stage, s)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = craft_plaintext(&specs, known, &mut rng).unwrap();
        let round_input = cipher.encrypt_rounds(pt, stage);
        for spec in &specs {
            let v = (rk.v >> spec.segment) & 1 == 1;
            let u = (rk.u >> spec.segment) & 1 == 1;
            prop_assert_eq!(
                segment_64(round_input, spec.segment),
                spec.expected_index(v, u)
            );
        }
    }

    #[test]
    fn true_hypothesis_always_survives_observation(
        key in any::<u128>(),
        segment in 0usize..16,
        probing_round in 1usize..=4,
        flush in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = Key::from_u128(key);
        let cfg = ObservationConfig::ideal()
            .with_probing_round(probing_round)
            .with_flush(flush);
        let mut oracle = VictimOracle::new(k, cfg);
        let spec = TargetSpec::new(1, segment);
        let rk = Gift64::new(k).round_keys()[0];
        let v = (rk.v >> segment) & 1 == 1;
        let u = (rk.u >> segment) & 1 == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
        let observed = oracle.observe(pt);
        prop_assert!(oracle.hypothesis_consistent(&spec, &observed, v, u));
    }

    #[test]
    fn key_bits_from_index_inverts_expected_index(
        segment in 0usize..16,
        stage in 1usize..=4,
        pattern in 0u8..16,
        v in any::<bool>(),
        u in any::<bool>(),
    ) {
        let spec = TargetSpec::with_forced_pattern(stage, segment, pattern);
        prop_assert_eq!(spec.key_bits_from_index(spec.expected_index(v, u)), (v, u));
    }

    #[test]
    fn coarse_line_observation_is_superset_of_fine_prediction(
        key in any::<u128>(),
        words_log2 in 0u32..4,
        seed in any::<u64>(),
    ) {
        // At any line size, the line containing the true index must be
        // observed — the invariant that keeps elimination sound at every
        // Table I geometry.
        let k = Key::from_u128(key);
        let words = 1usize << words_log2;
        let cfg = ObservationConfig::ideal().with_words_per_line(words);
        let mut oracle = VictimOracle::new(k, cfg);
        let spec = TargetSpec::new(1, 5);
        let rk = Gift64::new(k).round_keys()[0];
        let v = (rk.v >> 5) & 1 == 1;
        let u = (rk.u >> 5) & 1 == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = craft_plaintext(&[spec], &[], &mut rng).unwrap();
        let observed = oracle.observe(pt);
        prop_assert!(oracle.hypothesis_consistent(&spec, &observed, v, u));
    }
}
