//! Merging shard journals back into the full campaign matrix.
//!
//! Aggregation is pure bookkeeping — no cell is ever re-run. Any set of
//! `grinch-campaign/v1` journals can be merged in any order; the checks
//! here make the failure modes loud:
//!
//! * journals from **different campaign identities** never merge (the
//!   embedded config fingerprints must agree);
//! * the **same cell from two journals** must carry byte-identical
//!   results (determinism guarantees it; a conflict means a journal was
//!   tampered with or produced by a drifted build);
//! * an **incomplete cover** reports exactly which cells are missing, so
//!   an operator knows which shard still has to run.

use crate::shard::ShardPlan;
use grinch_arena::journal::JournalState;
use grinch_arena::{assemble_matrix, ArenaMatrix, CampaignConfig, CellResult};
use std::path::{Path, PathBuf};

/// The merged view of a set of campaign journals.
#[derive(Clone, Debug)]
pub struct Aggregation {
    /// The campaign identity every merged journal shares.
    pub campaign_id: String,
    /// The campaign, reconstructed from the journals' embedded config.
    pub config: CampaignConfig,
    /// Merged cell results, in cell-index order, deduplicated.
    pub results: Vec<(usize, CellResult)>,
    /// Cells of the grid no journal covered yet, in index order.
    pub missing: Vec<usize>,
    /// Journals that contributed (paths that existed and parsed).
    pub journals: Vec<PathBuf>,
}

impl Aggregation {
    /// Whether the journals cover the whole grid.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// Assembles the full matrix. Fails (naming the missing cells) when
    /// the cover is incomplete.
    pub fn matrix(&self) -> Result<ArenaMatrix, String> {
        if !self.is_complete() {
            return Err(format!(
                "aggregation incomplete: {} of {} cells missing (indices {:?})",
                self.missing.len(),
                self.config.num_cells(),
                self.missing
            ));
        }
        assemble_matrix(&self.config, self.results.clone())
    }
}

/// Merges the journals at `paths`. Paths that don't exist are skipped
/// (their shard simply hasn't started); at least one journal must exist.
/// All existing journals must belong to the same campaign identity, and
/// overlapping cells must agree byte-for-byte.
pub fn aggregate_journals(paths: &[PathBuf]) -> Result<Aggregation, String> {
    let mut merged: Option<Aggregation> = None;
    for path in paths {
        let Some(state) = JournalState::load(path)? else {
            continue;
        };
        let agg = merged.get_or_insert_with(|| Aggregation {
            campaign_id: state.campaign_id.clone(),
            config: state.config.clone(),
            results: Vec::new(),
            missing: Vec::new(),
            journals: Vec::new(),
        });
        if state.campaign_id != agg.campaign_id {
            return Err(format!(
                "journal {}: campaign {} does not match {} — refusing to merge \
                 different campaign identities",
                path.display(),
                state.campaign_id,
                agg.campaign_id
            ));
        }
        for (idx, cell) in state.cells {
            match agg.results.iter().find(|(i, _)| *i == idx) {
                Some((_, existing)) if *existing == cell => {} // determinism: same cell, same bytes
                Some(_) => {
                    return Err(format!(
                        "journal {}: cell {idx} conflicts with an earlier journal — \
                         journals of one campaign must agree byte-for-byte",
                        path.display()
                    ));
                }
                None => agg.results.push((idx, cell)),
            }
        }
        agg.journals.push(path.clone());
    }
    let mut agg = merged.ok_or("no journals found to aggregate")?;
    agg.results.sort_by_key(|(idx, _)| *idx);
    let done: std::collections::HashSet<usize> = agg.results.iter().map(|(i, _)| *i).collect();
    agg.missing = (0..agg.config.num_cells())
        .filter(|idx| !done.contains(idx))
        .collect();
    Ok(agg)
}

/// Convenience: aggregates every shard journal of `plan` under `dir`.
pub fn aggregate_plan(plan: &ShardPlan, dir: &Path) -> Result<Aggregation, String> {
    aggregate_journals(&plan.journal_paths(dir))
}

/// Discovers campaign journals in a directory: every
/// `CAMPAIGN_*.journal.jsonl` plus any bare `*.journal.jsonl`, sorted by
/// filename for deterministic merge order.
pub fn discover_journals(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".journal.jsonl"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grinch_arena::journal::run_journaled;
    use grinch_arena::run_campaign;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grinch-agg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn smoke() -> CampaignConfig {
        CampaignConfig {
            jobs: 2,
            ..CampaignConfig::smoke()
        }
    }

    #[test]
    fn shard_journals_aggregate_to_the_one_shot_matrix() {
        let cfg = smoke();
        let dir = tmpdir("shards");
        let plan = ShardPlan::new(&cfg, 2);
        for index in 0..plan.num_shards {
            run_journaled(
                &cfg,
                plan.journal_path(&dir, index),
                Some((index, plan.num_shards)),
                None,
                0,
            )
            .expect("shard runs");
        }
        let agg = aggregate_plan(&plan, &dir).expect("merges");
        assert!(agg.is_complete());
        assert_eq!(agg.journals.len(), 2);
        let matrix = agg.matrix().expect("assembles");
        assert_eq!(matrix.to_json(), run_campaign(&cfg).to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_covers_name_their_missing_cells() {
        let cfg = smoke();
        let dir = tmpdir("partial");
        let plan = ShardPlan::new(&cfg, 2);
        run_journaled(&cfg, plan.journal_path(&dir, 0), Some((0, 2)), None, 0).expect("shard 0");
        let agg = aggregate_plan(&plan, &dir).expect("merges what exists");
        assert!(!agg.is_complete());
        assert_eq!(agg.missing, plan.shards[1], "missing = the unrun shard");
        let err = agg.matrix().expect_err("incomplete");
        assert!(err.contains("missing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_identities_and_conflicts_refuse_to_merge() {
        let cfg = smoke();
        let mut other = cfg.clone();
        other.seed ^= 1;
        let dir = tmpdir("foreign");
        let a = dir.join("a.journal.jsonl");
        let b = dir.join("b.journal.jsonl");
        run_journaled(&cfg, &a, Some((0, 2)), None, 0).expect("a");
        run_journaled(&other, &b, Some((1, 2)), None, 0).expect("b");
        let err = aggregate_journals(&[a.clone(), b]).expect_err("identities differ");
        assert!(err.contains("refusing to merge"), "{err}");

        // A tampered duplicate cell conflicts.
        let text = std::fs::read_to_string(&a).expect("text");
        let cell_line = text
            .lines()
            .find(|l| l.contains("\"record\":\"cell\""))
            .expect("has a cell");
        let tampered = dir.join("tampered.journal.jsonl");
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let forged = cell_line.replace("\"trials\":2", "\"trials\":3");
        let pos = lines.iter().position(|l| l == cell_line).expect("pos");
        lines[pos] = forged;
        std::fs::write(&tampered, lines.join("\n")).expect("writes");
        let err = aggregate_journals(&[a, tampered]).expect_err("conflict");
        assert!(err.contains("conflicts"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_finds_journals_sorted() {
        let cfg = smoke();
        let dir = tmpdir("discover");
        let plan = ShardPlan::new(&cfg, 2);
        for index in [1usize, 0] {
            run_journaled(
                &cfg,
                plan.journal_path(&dir, index),
                Some((index, 2)),
                None,
                0,
            )
            .expect("shard");
        }
        std::fs::write(dir.join("unrelated.txt"), "x").expect("writes");
        let found = discover_journals(&dir).expect("discovers");
        assert_eq!(found, plan.journal_paths(&dir), "sorted, journals only");
        assert!(aggregate_journals(&found).expect("merges").is_complete());
        assert!(aggregate_journals(&[]).is_err(), "nothing to aggregate");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
