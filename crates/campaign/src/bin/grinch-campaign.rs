//! `grinch-campaign` — the sharded, resumable campaign orchestrator CLI.
//!
//! ```text
//! grinch-campaign run [--preset smoke|full] [--trials N] [--seed N] [--jobs N]
//!                     [--max-encryptions N] [--shards N] [--shard I]
//!                     [--journal-dir DIR] [--out FILE] [--throttle-ms N]
//!                     [--check] [--baseline FILE]
//! grinch-campaign status [--journal-dir DIR]
//! grinch-campaign aggregate [--journal-dir DIR] [--campaign ID] [--out FILE]
//!                     [--check] [--baseline FILE]
//! grinch-campaign serve [--addr HOST:PORT] [--journal-dir DIR]
//!                     [--queue-capacity N] [--shards N] [--jobs N]
//!                     [--throttle-ms N] [--retry-after-secs N]
//!                     [--duration-secs N]
//! ```
//!
//! Exit codes: `0` success / baseline agreement, `1` baseline mismatch,
//! `2` usage or I/O error. Argument parsing is hand-rolled, matching the
//! other workspace binaries — the build environment is offline.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use grinch_arena::journal::run_journaled;
use grinch_arena::{ArenaMatrix, CampaignConfig, Metric};
use grinch_campaign::aggregate::{aggregate_journals, discover_journals};
use grinch_campaign::{serve, ServeOptions, ShardPlan};

const USAGE: &str = "\
grinch-campaign: sharded, resumable campaign orchestrator for the arena sweep

usage:
  grinch-campaign run [--preset smoke|full] [--trials N] [--seed N] [--jobs N]
                      [--max-encryptions N] [--shards N] [--shard I]
                      [--journal-dir DIR] [--out FILE] [--throttle-ms N]
                      [--check] [--baseline FILE]
      run a campaign split into --shards deterministic shards (default 1),
      each streaming to its own append-only grinch-campaign/v1 journal in
      --journal-dir (default: results/campaign). A killed run resumes:
      re-run the same command and only unjournaled cells execute. With
      --shard I only that one shard runs (spread shards over invocations
      or machines; aggregate later). When every shard is complete the
      aggregated grinch-arena/v1 matrix lands in --out (default:
      CAMPAIGN_<id>.json inside --journal-dir) — byte-identical to a
      one-shot grinch-arena run for any shard count, ordering, worker
      count or kill/resume history. --throttle-ms sleeps after each cell
      (a CI hook for widening kill windows; never affects results).
      --check compares the aggregated matrix byte-for-byte against
      --baseline (default: bench/baselines/ARENA_MATRIX.json); exit 1 on
      drift.
  grinch-campaign status [--journal-dir DIR]
      summarize every campaign journaled under --journal-dir: per-shard
      cells done/target, resumability, completeness.
  grinch-campaign aggregate [--journal-dir DIR] [--campaign ID] [--out FILE]
                      [--check] [--baseline FILE]
      merge the journals under --journal-dir (optionally only those of
      campaign ID) into the full matrix without re-running anything.
      Errors if the cover is incomplete, naming the missing cells.
  grinch-campaign serve [--addr HOST:PORT] [--journal-dir DIR]
                      [--queue-capacity N] [--shards N] [--jobs N]
                      [--throttle-ms N] [--retry-after-secs N]
                      [--duration-secs N]
      accept campaign submissions over HTTP (default addr 127.0.0.1:9091):
      POST /campaigns (a grinch-campaign-config/v1 document; 202 queued,
      200 if the identity is already known, 429 + Retry-After when the
      bounded queue is full), GET /campaigns, GET /campaigns/<id>,
      GET /campaigns/<id>/matrix, GET /campaigns/<id>/heatmap,
      GET /metrics, GET /healthz. Runs until interrupted, or for
      --duration-secs when given (CI hook).
";

fn fail(message: &str) -> ExitCode {
    eprintln!("grinch-campaign: {message}");
    ExitCode::from(2)
}

/// Pulls the value following a `--flag` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn reject_leftover(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(unknown) => Err(format!("unexpected argument {unknown:?}")),
        None => Ok(()),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

fn write_file(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn default_journal_dir() -> PathBuf {
    grinch_obs::paths::results_dir().join("campaign")
}

/// Shared `--preset`/`--trials`/... campaign construction.
fn campaign_from_args(args: &mut Vec<String>) -> Result<CampaignConfig, String> {
    let preset = take_value(args, "--preset")?.unwrap_or_else(|| "smoke".to_string());
    let mut campaign = match preset.as_str() {
        "smoke" => CampaignConfig::smoke(),
        "full" => CampaignConfig::full(),
        other => return Err(format!("--preset: unknown preset {other:?}")),
    };
    if let Some(v) = take_value(args, "--trials")? {
        campaign.trials = parse_num("--trials", &v)?;
    }
    if let Some(v) = take_value(args, "--seed")? {
        campaign.seed = parse_num("--seed", &v)?;
    }
    if let Some(v) = take_value(args, "--jobs")? {
        campaign.jobs = parse_num("--jobs", &v)?;
    }
    if let Some(v) = take_value(args, "--max-encryptions")? {
        campaign.max_stage_encryptions = parse_num("--max-encryptions", &v)?;
    }
    campaign.validate()?;
    Ok(campaign)
}

/// Byte-exact baseline gate shared by `run --check` and
/// `aggregate --check`.
fn check_against_baseline(matrix: &ArenaMatrix, baseline_path: &Path) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let baseline =
        ArenaMatrix::from_json(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    match matrix.compare(&baseline) {
        Ok(()) => {
            eprintln!(
                "grinch-campaign: matrix matches baseline {}",
                baseline_path.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(diff) => {
            eprintln!("grinch-campaign: {diff}");
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let campaign = campaign_from_args(&mut args)?;
    let shards = match take_value(&mut args, "--shards")? {
        None => 1usize,
        Some(v) => parse_num("--shards", &v)?,
    }
    .max(1);
    let only_shard = match take_value(&mut args, "--shard")? {
        None => None,
        Some(v) => Some(parse_num::<usize>("--shard", &v)?),
    };
    let journal_dir = take_value(&mut args, "--journal-dir")?
        .map(PathBuf::from)
        .unwrap_or_else(default_journal_dir);
    let throttle_ms = match take_value(&mut args, "--throttle-ms")? {
        None => 0,
        Some(v) => parse_num::<u64>("--throttle-ms", &v)?,
    };
    let plan = ShardPlan::new(&campaign, shards);
    let out = take_value(&mut args, "--out")?
        .map(PathBuf::from)
        .unwrap_or_else(|| journal_dir.join(plan.matrix_name()));
    let check = take_switch(&mut args, "--check");
    let baseline_path = take_value(&mut args, "--baseline")?
        .map(PathBuf::from)
        .unwrap_or_else(|| grinch_obs::paths::baselines_dir().join("ARENA_MATRIX.json"));
    reject_leftover(&args)?;

    if let Some(index) = only_shard {
        if index >= shards {
            return Err(format!("--shard {index} out of range (--shards {shards})"));
        }
    }
    let run_list: Vec<usize> = match only_shard {
        Some(index) => vec![index],
        None => (0..shards).collect(),
    };

    eprintln!(
        "grinch-campaign: campaign {} — {} cells x {} trials over {} shard(s)",
        plan.campaign_id,
        campaign.num_cells(),
        campaign.trials,
        shards
    );
    for index in run_list {
        let path = plan.journal_path(&journal_dir, index);
        let outcome = run_journaled(&campaign, &path, Some((index, shards)), None, throttle_ms)?;
        eprintln!(
            "grinch-campaign: shard {index}/{shards}: {} cells reused, {} run -> {}",
            outcome.reused_cells,
            outcome.ran_cells,
            path.display()
        );
    }

    // Aggregate whatever the directory now covers. A partial run (--shard)
    // reports what is still missing instead of failing.
    let agg = aggregate_journals(&plan.journal_paths(&journal_dir))?;
    if !agg.is_complete() {
        eprintln!(
            "grinch-campaign: {} of {} cells journaled; {} still missing — run the remaining \
             shards, then `grinch-campaign aggregate`",
            agg.results.len(),
            campaign.num_cells(),
            agg.missing.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let matrix = agg.matrix()?;
    print!("{}", matrix.heat(Metric::SuccessRate).ascii());
    write_file(&out, &matrix.to_json())?;
    eprintln!("grinch-campaign: matrix written to {}", out.display());

    if check {
        return check_against_baseline(&matrix, &baseline_path);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_status(mut args: Vec<String>) -> Result<ExitCode, String> {
    let journal_dir = take_value(&mut args, "--journal-dir")?
        .map(PathBuf::from)
        .unwrap_or_else(default_journal_dir);
    reject_leftover(&args)?;

    let paths = discover_journals(&journal_dir)?;
    if paths.is_empty() {
        println!("no journals under {}", journal_dir.display());
        return Ok(ExitCode::SUCCESS);
    }
    // Group journals by campaign identity, tolerating unloadable files.
    let mut campaigns: Vec<(String, usize, usize, usize)> = Vec::new(); // id, journals, done, total
    for path in &paths {
        let state = match grinch_arena::JournalState::load(path) {
            Ok(Some(state)) => state,
            Ok(None) => continue,
            Err(e) => {
                eprintln!("grinch-campaign: skipping {e}");
                continue;
            }
        };
        let done = state.cells.len();
        let target = state.target_cells().len();
        let tag = match state.shard {
            Some((index, of)) => format!("shard {index}/{of}"),
            None => "full grid".to_string(),
        };
        println!(
            "{}  {}  {}/{} cells  {}{}",
            state.campaign_id,
            tag,
            done,
            target,
            if state.finalized {
                "finalized"
            } else {
                "resumable"
            },
            if state.truncated_tail {
                "  (torn tail discarded)"
            } else {
                ""
            }
        );
        match campaigns
            .iter_mut()
            .find(|(id, ..)| *id == state.campaign_id)
        {
            Some(entry) => {
                entry.1 += 1;
                entry.2 += done;
            }
            None => campaigns.push((state.campaign_id.clone(), 1, done, state.config.num_cells())),
        }
    }
    for (id, journals, done, total) in campaigns {
        println!(
            "campaign {id}: {journals} journal(s), {done}/{total} cells{}",
            if done >= total { " — complete" } else { "" }
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_aggregate(mut args: Vec<String>) -> Result<ExitCode, String> {
    let journal_dir = take_value(&mut args, "--journal-dir")?
        .map(PathBuf::from)
        .unwrap_or_else(default_journal_dir);
    let campaign_filter = take_value(&mut args, "--campaign")?;
    let out = take_value(&mut args, "--out")?.map(PathBuf::from);
    let check = take_switch(&mut args, "--check");
    let baseline_path = take_value(&mut args, "--baseline")?
        .map(PathBuf::from)
        .unwrap_or_else(|| grinch_obs::paths::baselines_dir().join("ARENA_MATRIX.json"));
    reject_leftover(&args)?;

    let mut paths = discover_journals(&journal_dir)?;
    if let Some(id) = &campaign_filter {
        paths.retain(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(id.as_str()))
        });
    }
    let agg = aggregate_journals(&paths)?;
    let matrix = agg.matrix()?; // names the missing cells if incomplete
    eprintln!(
        "grinch-campaign: {} journal(s) -> campaign {} complete ({} cells)",
        agg.journals.len(),
        agg.campaign_id,
        agg.results.len()
    );
    let out = out.unwrap_or_else(|| journal_dir.join(format!("CAMPAIGN_{}.json", agg.campaign_id)));
    write_file(&out, &matrix.to_json())?;
    eprintln!("grinch-campaign: matrix written to {}", out.display());

    if check {
        return check_against_baseline(&matrix, &baseline_path);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:9091".to_string(),
        journal_dir: default_journal_dir(),
        ..ServeOptions::default()
    };
    if let Some(v) = take_value(&mut args, "--addr")? {
        opts.addr = v;
    }
    if let Some(v) = take_value(&mut args, "--journal-dir")? {
        opts.journal_dir = PathBuf::from(v);
    }
    if let Some(v) = take_value(&mut args, "--queue-capacity")? {
        opts.queue_capacity = parse_num("--queue-capacity", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--shards")? {
        opts.shards = parse_num::<usize>("--shards", &v)?.max(1);
    }
    if let Some(v) = take_value(&mut args, "--jobs")? {
        opts.jobs = parse_num("--jobs", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--throttle-ms")? {
        opts.throttle_ms = parse_num("--throttle-ms", &v)?;
    }
    if let Some(v) = take_value(&mut args, "--retry-after-secs")? {
        opts.retry_after_secs = parse_num("--retry-after-secs", &v)?;
    }
    let duration_secs = match take_value(&mut args, "--duration-secs")? {
        None => 0u64,
        Some(v) => parse_num("--duration-secs", &v)?,
    };
    reject_leftover(&args)?;

    let handle = serve(opts).map_err(|e| format!("cannot start serve mode: {e}"))?;
    eprintln!(
        "grinch-campaign: serving on http://{} (POST /campaigns to submit)",
        handle.addr()
    );
    if duration_secs > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration_secs));
        eprintln!("grinch-campaign: --duration-secs elapsed, shutting down");
        handle.shutdown();
    } else {
        // Serve until the process is killed; journals make that safe.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        print!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "run" => cmd_run(args),
        "status" => cmd_status(args),
        "aggregate" => cmd_aggregate(args),
        "serve" => cmd_serve(args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => fail(&message),
    }
}
