//! # grinch-campaign
//!
//! The long-running campaign orchestrator over the `grinch-arena` sweep
//! engine: sharded work distribution, streaming journals, checkpointed
//! resume, and an HTTP serve mode.
//!
//! `grinch-arena run` is a one-shot process — fine for the CI smoke grid,
//! wrong for the full evaluation matrix, which wants to survive restarts,
//! spread over invocations (or machines), and report progress while it
//! runs. This crate adds that operational layer without touching the
//! determinism contract: every cell stays a pure function of
//! `(config identity, cell_index)`, so **any** shard count, shard
//! ordering, worker count or kill/resume history re-aggregates to a
//! matrix byte-identical to a one-shot `grinch-arena/v1` run (pinned by
//! test against the committed baseline).
//!
//! * [`shard`] — [`ShardPlan`]: the deterministic partition of the cell
//!   grid into shards, keyed by the same splitmix64 per-cell seed chain
//!   the engine already derives trial randomness from;
//! * [`aggregate`] — merging any set of `grinch-campaign/v1` shard
//!   journals (see [`grinch_arena::journal`]) back into the full
//!   [`ArenaMatrix`](grinch_arena::ArenaMatrix), with identity, conflict
//!   and coverage checks that name what is missing instead of emitting a
//!   silently wrong matrix;
//! * [`serve`] — the HTTP service: campaign submission over POST with a
//!   bounded queue and explicit backpressure (429 + `Retry-After`),
//!   per-shard progress, Prometheus `/metrics`, and rendered heatmaps —
//!   mounted on the same zero-dependency [`grinch_obs`] HTTP server the
//!   arena's live plane uses.
//!
//! The `grinch-campaign` binary wires it into a CLI:
//!
//! ```text
//! grinch-campaign run --preset full --shards 4 --journal-dir results/campaign
//! grinch-campaign status --journal-dir results/campaign
//! grinch-campaign aggregate --journal-dir results/campaign --out MATRIX.json
//! grinch-campaign serve --addr 127.0.0.1:9091 --queue-capacity 4
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod serve;
pub mod shard;

pub use aggregate::{aggregate_journals, Aggregation};
pub use serve::{serve, ServeHandle, ServeOptions};
pub use shard::ShardPlan;
