//! `grinch-campaign serve`: campaign submission and monitoring over HTTP.
//!
//! The service mounts campaign endpoints on the same zero-dependency
//! [`grinch_obs`] server the arena's live plane uses ([`Router`] over a
//! plain `TcpListener` — no async runtime, no HTTP crate):
//!
//! | method | path | purpose |
//! |---|---|---|
//! | `POST` | `/campaigns` | submit a `grinch-campaign-config/v1` document |
//! | `GET` | `/campaigns` | list known campaigns and the queue |
//! | `GET` | `/campaigns/<id>` | per-shard progress of one campaign |
//! | `GET` | `/campaigns/<id>/matrix` | aggregated matrix (409 while incomplete) |
//! | `GET` | `/campaigns/<id>/heatmap` | success-rate heatmap (SVG) |
//! | `GET` | `/metrics` | Prometheus text exposition |
//! | `GET` | `/healthz` | service liveness |
//!
//! Submissions land in a **bounded** queue drained by one worker thread;
//! a full queue answers `429 Too Many Requests` with an explicit
//! `Retry-After` header rather than buffering without limit — the client
//! owns the retry, the server owns the bound. Re-submitting a config the
//! registry already knows (same identity fingerprint) is idempotent: it
//! answers `200` with the current status instead of queueing a duplicate.
//!
//! The worker runs each campaign's shards sequentially through
//! [`run_journaled`], so everything the service executes is journaled,
//! resumable and byte-deterministic exactly like the CLI paths — killing
//! the server mid-campaign and restarting it over the same journal
//! directory resumes instead of recomputing. Progress reads come straight
//! from the journals on disk (atomic line appends make concurrent reads
//! safe), so status survives restarts too.

use crate::aggregate::{aggregate_plan, Aggregation};
use crate::shard::ShardPlan;
use grinch_arena::journal::{run_journaled, JournalState};
use grinch_arena::{CampaignConfig, Metric};
use grinch_obs::{HttpRequest, HttpResponse, LiveServer, Router};
use grinch_telemetry::json::ObjWriter;
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of the serve mode.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub addr: String,
    /// Directory holding shard journals and aggregated matrices.
    pub journal_dir: PathBuf,
    /// Maximum campaigns *waiting* in the submission queue; a submission
    /// beyond this answers 429.
    pub queue_capacity: usize,
    /// Shards each accepted campaign is split into.
    pub shards: usize,
    /// Worker threads per shard run (`0` keeps each config's own `jobs`).
    pub jobs: usize,
    /// Per-cell sleep inside shard runs — the CI hook for widening the
    /// kill window; `0` disables it. Never feeds results.
    pub throttle_ms: u64,
    /// `Retry-After` seconds advertised on a 429.
    pub retry_after_secs: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            journal_dir: PathBuf::from("results/campaign"),
            queue_capacity: 4,
            shards: 1,
            jobs: 0,
            throttle_ms: 0,
            retry_after_secs: 2,
        }
    }
}

/// Lifecycle of one submitted campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed(_) => "failed",
        }
    }
}

struct Entry {
    config: CampaignConfig,
    phase: Phase,
}

/// Monotonic service counters exported on `/metrics`.
#[derive(Default)]
struct Counters {
    submitted: u64,
    accepted: u64,
    deduplicated: u64,
    rejected_full: u64,
    rejected_invalid: u64,
    completed: u64,
    failed: u64,
    cells_run: u64,
    cells_reused: u64,
}

struct Registry {
    entries: BTreeMap<String, Entry>,
    queue: VecDeque<String>,
    counters: Counters,
}

/// A running serve instance: the HTTP server plus its worker thread.
///
/// Dropping the handle (or calling [`ServeHandle::shutdown`]) stops
/// accepting work and joins both threads; a campaign mid-shard finishes
/// its current shard first, everything else stays journaled for the next
/// start to resume.
pub struct ServeHandle {
    server: Option<LiveServer>,
    worker: Option<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServeHandle {
    /// The actually-bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the worker and the HTTP server, joining both.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds the HTTP service and spawns the campaign worker.
pub fn serve(opts: ServeOptions) -> std::io::Result<ServeHandle> {
    std::fs::create_dir_all(&opts.journal_dir)?;
    let registry = Arc::new(Mutex::new(Registry {
        entries: BTreeMap::new(),
        queue: VecDeque::new(),
        counters: Counters::default(),
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let server = LiveServer::bind_with_router(&opts.addr, router(&opts, Arc::clone(&registry)))?;
    let addr = server.addr();

    let worker_registry = Arc::clone(&registry);
    let worker_stop = Arc::clone(&stop);
    let worker_opts = opts.clone();
    let worker = std::thread::Builder::new()
        .name("grinch-campaign-worker".to_string())
        .spawn(move || worker_loop(worker_opts, worker_registry, worker_stop))
        .expect("spawn campaign worker thread");

    Ok(ServeHandle {
        server: Some(server),
        worker: Some(worker),
        stop,
        addr,
    })
}

/// The worker: pops one campaign at a time off the queue and runs its
/// shards sequentially through the journaled engine.
fn worker_loop(opts: ServeOptions, registry: Arc<Mutex<Registry>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        let next = {
            let mut reg = registry.lock().expect("registry poisoned");
            match reg.queue.pop_front() {
                Some(id) => {
                    let entry = reg.entries.get_mut(&id).expect("queued id is registered");
                    entry.phase = Phase::Running;
                    Some((id, entry.config.clone()))
                }
                None => None,
            }
        };
        let Some((id, mut config)) = next else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if opts.jobs > 0 {
            config.jobs = opts.jobs;
        }

        let plan = ShardPlan::new(&config, opts.shards);
        let mut failure: Option<String> = None;
        for index in 0..plan.num_shards {
            let path = plan.journal_path(&opts.journal_dir, index);
            match run_journaled(
                &config,
                &path,
                Some((index, plan.num_shards)),
                None,
                opts.throttle_ms,
            ) {
                Ok(outcome) => {
                    let mut reg = registry.lock().expect("registry poisoned");
                    reg.counters.cells_run += outcome.ran_cells as u64;
                    reg.counters.cells_reused += outcome.reused_cells as u64;
                }
                Err(e) => {
                    failure = Some(format!("shard {index}: {e}"));
                    break;
                }
            }
        }

        // Persist the aggregated matrix next to the journals so the result
        // outlives the process (the /matrix endpoint also reads from the
        // journals directly).
        if failure.is_none() {
            failure = aggregate_plan(&plan, &opts.journal_dir)
                .and_then(|agg| agg.matrix())
                .and_then(|matrix| {
                    let out = opts.journal_dir.join(plan.matrix_name());
                    // to_json() is newline-terminated already.
                    std::fs::write(&out, matrix.to_json())
                        .map_err(|e| format!("write {}: {e}", out.display()))
                })
                .err();
        }

        let mut reg = registry.lock().expect("registry poisoned");
        let entry = reg.entries.get_mut(&id).expect("running id is registered");
        match failure {
            None => {
                entry.phase = Phase::Done;
                reg.counters.completed += 1;
            }
            Some(e) => {
                entry.phase = Phase::Failed(e);
                reg.counters.failed += 1;
            }
        }
    }
}

fn router(opts: &ServeOptions, registry: Arc<Mutex<Registry>>) -> Router {
    let submit_opts = opts.clone();
    let submit_reg = Arc::clone(&registry);
    let list_reg = Arc::clone(&registry);
    let detail_opts = opts.clone();
    let detail_reg = Arc::clone(&registry);
    let metrics_reg = Arc::clone(&registry);
    let health_reg = registry;

    Router::new()
        .post("/campaigns", move |req: &HttpRequest| {
            handle_submit(req, &submit_opts, &submit_reg)
        })
        .get("/campaigns", move |_| {
            let reg = list_reg.lock().expect("registry poisoned");
            let campaigns: Vec<String> = reg
                .entries
                .iter()
                .map(|(id, entry)| {
                    let mut w = ObjWriter::new();
                    w.str("campaign_id", id).str("state", entry.phase.name());
                    w.finish()
                })
                .collect();
            let mut w = ObjWriter::new();
            w.raw("campaigns", &format!("[{}]", campaigns.join(",")))
                .u64("queue_depth", reg.queue.len() as u64);
            HttpResponse::json(200, format!("{}\n", w.finish()))
        })
        .get_prefix("/campaigns/", move |req: &HttpRequest| {
            handle_campaign_get(req, &detail_opts, &detail_reg)
        })
        .get("/metrics", move |_| {
            let reg = metrics_reg.lock().expect("registry poisoned");
            let mut r = HttpResponse::text(200, exposition(&reg));
            r.content_type = "text/plain; version=0.0.4; charset=utf-8".to_string();
            r
        })
        .get("/healthz", move |_| {
            let reg = health_reg.lock().expect("registry poisoned");
            let running = reg
                .entries
                .iter()
                .find(|(_, e)| e.phase == Phase::Running)
                .map(|(id, _)| id.clone());
            let mut w = ObjWriter::new();
            w.str("status", "ok")
                .u64("campaigns", reg.entries.len() as u64)
                .u64("queue_depth", reg.queue.len() as u64);
            match running {
                Some(id) => w.str("running", &id),
                None => w.null("running"),
            };
            HttpResponse::json(200, format!("{}\n", w.finish()))
        })
        .get("/", |_| {
            HttpResponse::text(
                200,
                "grinch-campaign serve\n\n\
                 POST /campaigns                submit a grinch-campaign-config/v1 document\n\
                 GET  /campaigns                known campaigns + queue depth\n\
                 GET  /campaigns/<id>           per-shard progress\n\
                 GET  /campaigns/<id>/matrix    aggregated matrix (409 while incomplete)\n\
                 GET  /campaigns/<id>/heatmap   success-rate heatmap (SVG)\n\
                 GET  /metrics                  Prometheus text exposition\n\
                 GET  /healthz                  service liveness\n",
            )
        })
}

fn handle_submit(
    req: &HttpRequest,
    opts: &ServeOptions,
    registry: &Arc<Mutex<Registry>>,
) -> HttpResponse {
    let mut reg = registry.lock().expect("registry poisoned");
    reg.counters.submitted += 1;
    let config = match CampaignConfig::from_config_json(&req.body) {
        Ok(config) => config,
        Err(e) => {
            reg.counters.rejected_invalid += 1;
            return HttpResponse::json(400, error_json(&e));
        }
    };
    let id = config.fingerprint();

    // Idempotent re-submission: same identity answers with its status.
    if let Some(phase) = reg.entries.get(&id).map(|entry| entry.phase.clone()) {
        reg.counters.deduplicated += 1;
        let body = submit_json(&id, phase.name(), &config, opts);
        return HttpResponse::json(200, body);
    }
    // Backpressure: the queue is bounded, the client owns the retry.
    if reg.queue.len() >= opts.queue_capacity {
        reg.counters.rejected_full += 1;
        let mut w = ObjWriter::new();
        w.str("error", "submission queue full")
            .u64("queue_depth", reg.queue.len() as u64)
            .u64("retry_after_secs", opts.retry_after_secs);
        return HttpResponse::json(429, format!("{}\n", w.finish()))
            .with_header("Retry-After", opts.retry_after_secs.to_string());
    }

    reg.counters.accepted += 1;
    reg.entries.insert(
        id.clone(),
        Entry {
            config: config.clone(),
            phase: Phase::Queued,
        },
    );
    reg.queue.push_back(id.clone());
    HttpResponse::json(202, submit_json(&id, "queued", &config, opts))
}

fn submit_json(id: &str, state: &str, config: &CampaignConfig, opts: &ServeOptions) -> String {
    let mut w = ObjWriter::new();
    w.str("campaign_id", id)
        .str("state", state)
        .u64("cells", config.num_cells() as u64)
        .u64("shards", opts.shards.max(1) as u64);
    format!("{}\n", w.finish())
}

fn handle_campaign_get(
    req: &HttpRequest,
    opts: &ServeOptions,
    registry: &Arc<Mutex<Registry>>,
) -> HttpResponse {
    let rest = req.path.trim_start_matches("/campaigns/");
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let (config, phase) = {
        let reg = registry.lock().expect("registry poisoned");
        match reg.entries.get(id) {
            Some(entry) => (entry.config.clone(), entry.phase.clone()),
            None => {
                return HttpResponse::json(404, error_json(&format!("unknown campaign {id:?}")))
            }
        }
    };
    let plan = ShardPlan::new(&config, opts.shards);
    match tail {
        None => HttpResponse::json(200, status_json(id, &phase, &config, &plan, opts)),
        Some("matrix") => match complete_aggregation(&plan, opts) {
            Ok(agg) => match agg.matrix() {
                Ok(matrix) => HttpResponse::json(200, matrix.to_json()),
                Err(e) => HttpResponse::json(500, error_json(&e)),
            },
            Err(resp) => resp,
        },
        Some("heatmap") => match complete_aggregation(&plan, opts) {
            Ok(agg) => match agg.matrix() {
                Ok(matrix) => {
                    let mut r = HttpResponse::text(200, matrix.heat(Metric::SuccessRate).svg());
                    r.content_type = "image/svg+xml".to_string();
                    r
                }
                Err(e) => HttpResponse::json(500, error_json(&e)),
            },
            Err(resp) => resp,
        },
        Some(other) => {
            HttpResponse::json(404, error_json(&format!("no such campaign view {other:?}")))
        }
    }
}

/// Aggregates a campaign's journals, mapping "not done yet" onto the 409
/// the matrix/heatmap endpoints answer while shards are still running.
fn complete_aggregation(
    plan: &ShardPlan,
    opts: &ServeOptions,
) -> Result<Aggregation, HttpResponse> {
    match aggregate_plan(plan, &opts.journal_dir) {
        Ok(agg) if agg.is_complete() => Ok(agg),
        Ok(agg) => {
            let mut w = ObjWriter::new();
            w.str("error", "campaign incomplete")
                .u64("cells_missing", agg.missing.len() as u64)
                .u64("cells_done", agg.results.len() as u64);
            Err(HttpResponse::json(409, format!("{}\n", w.finish())))
        }
        Err(e) if e.contains("no journals") => Err(HttpResponse::json(
            409,
            error_json("campaign has not started"),
        )),
        Err(e) => Err(HttpResponse::json(500, error_json(&e))),
    }
}

/// The per-campaign status document: registry phase plus per-shard journal
/// progress read from disk — atomic line appends make the concurrent read
/// safe, and the numbers survive server restarts.
fn status_json(
    id: &str,
    phase: &Phase,
    config: &CampaignConfig,
    plan: &ShardPlan,
    opts: &ServeOptions,
) -> String {
    let mut shards = Vec::new();
    let mut cells_done = 0usize;
    for index in 0..plan.num_shards {
        let target = plan.shards[index].len();
        let (done, finalized) =
            match JournalState::load(plan.journal_path(&opts.journal_dir, index)) {
                Ok(Some(state)) if state.campaign_id == *id => (state.cells.len(), state.finalized),
                _ => (0, false),
            };
        cells_done += done.min(target);
        let mut w = ObjWriter::new();
        w.u64("shard", index as u64)
            .u64("cells_target", target as u64)
            .u64("cells_done", done as u64)
            .bool("finalized", finalized);
        shards.push(w.finish());
    }
    let mut w = ObjWriter::new();
    w.str("campaign_id", id)
        .str("state", phase.name())
        .u64("cells_total", config.num_cells() as u64)
        .u64("cells_done", cells_done as u64);
    if let Phase::Failed(e) = phase {
        w.str("error", e);
    }
    w.raw("shards", &format!("[{}]", shards.join(",")));
    format!("{}\n", w.finish())
}

fn error_json(message: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("error", message);
    format!("{}\n", w.finish())
}

/// Hand-rolled Prometheus exposition of the service counters; the shape
/// always passes [`grinch_obs::validate_exposition`].
fn exposition(reg: &Registry) -> String {
    let running = reg
        .entries
        .values()
        .filter(|e| e.phase == Phase::Running)
        .count();
    let mut out = String::new();
    let mut sample = |name: &str, kind: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    sample(
        "grinch_campaign_submissions_total",
        "counter",
        "Campaign submissions received (any outcome).",
        reg.counters.submitted,
    );
    sample(
        "grinch_campaign_accepted_total",
        "counter",
        "Submissions accepted into the queue.",
        reg.counters.accepted,
    );
    sample(
        "grinch_campaign_deduplicated_total",
        "counter",
        "Submissions answered idempotently (identity already known).",
        reg.counters.deduplicated,
    );
    sample(
        "grinch_campaign_rejected_full_total",
        "counter",
        "Submissions rejected with 429 because the queue was full.",
        reg.counters.rejected_full,
    );
    sample(
        "grinch_campaign_rejected_invalid_total",
        "counter",
        "Submissions rejected with 400 as unparseable configs.",
        reg.counters.rejected_invalid,
    );
    sample(
        "grinch_campaign_completed_total",
        "counter",
        "Campaigns run to a complete aggregated matrix.",
        reg.counters.completed,
    );
    sample(
        "grinch_campaign_failed_total",
        "counter",
        "Campaigns that failed mid-run.",
        reg.counters.failed,
    );
    sample(
        "grinch_campaign_cells_run_total",
        "counter",
        "Cells executed by this process.",
        reg.counters.cells_run,
    );
    sample(
        "grinch_campaign_cells_reused_total",
        "counter",
        "Cells reused from journals instead of re-running.",
        reg.counters.cells_reused,
    );
    sample(
        "grinch_campaign_queue_depth",
        "gauge",
        "Campaigns waiting in the submission queue.",
        reg.queue.len() as u64,
    );
    sample(
        "grinch_campaign_running",
        "gauge",
        "Campaigns currently executing (0 or 1).",
        running as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grinch_arena::run_campaign;
    use grinch_arena::{AttackSpec, DefenseSpec};
    use grinch_obs::live::{http_get, http_post, validate_exposition};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grinch-serve-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    /// A one-cell campaign — the smallest thing the engine will run — so
    /// serve tests stay fast even with a throttle.
    fn tiny(seed: u64) -> CampaignConfig {
        CampaignConfig {
            defenses: vec![DefenseSpec::WayPartition],
            attacks: vec![AttackSpec::PrimeProbe],
            noise_levels: vec![0.0],
            trials: 1,
            seed,
            max_stage_encryptions: 500,
            jobs: 1,
        }
    }

    fn wait_for_state(addr: &str, id: &str, state: &str) -> String {
        for _ in 0..500 {
            let (code, body) = http_get(addr, &format!("/campaigns/{id}")).expect("status");
            assert_eq!(code, 200, "{body}");
            if body.contains(&format!("\"state\":\"{state}\"")) {
                return body;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("campaign {id} never reached state {state:?}");
    }

    #[test]
    fn submission_runs_to_a_deterministic_matrix() {
        let dir = tmpdir("run");
        let handle = serve(ServeOptions {
            journal_dir: dir.clone(),
            shards: 2,
            ..ServeOptions::default()
        })
        .expect("binds");
        let addr = handle.addr().to_string();

        let cfg = tiny(7);
        let id = cfg.fingerprint();
        let (code, _, body) = http_post(&addr, "/campaigns", &cfg.config_json()).expect("POST");
        assert_eq!(code, 202, "{body}");
        assert!(body.contains(&id), "{body}");

        let status = wait_for_state(&addr, &id, "done");
        assert!(status.contains("\"cells_done\":1"), "{status}");

        // The served matrix is byte-identical to a direct in-process run.
        let (code, body) = http_get(&addr, &format!("/campaigns/{id}/matrix")).expect("matrix");
        assert_eq!(code, 200, "{body}");
        assert_eq!(body, run_campaign(&cfg).to_json());
        // ... and was also persisted next to the journals.
        let on_disk = std::fs::read_to_string(dir.join(ShardPlan::new(&cfg, 2).matrix_name()))
            .expect("matrix file");
        assert_eq!(on_disk, run_campaign(&cfg).to_json());

        // Heatmap renders from the aggregated matrix.
        let (code, svg) = http_get(&addr, &format!("/campaigns/{id}/heatmap")).expect("heatmap");
        assert_eq!(code, 200);
        assert!(svg.starts_with("<svg"), "{}", &svg[..svg.len().min(60)]);

        // Idempotent re-submission: 200 with status, not a second run.
        let (code, _, body) = http_post(&addr, "/campaigns", &cfg.config_json()).expect("POST");
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"state\":\"done\""), "{body}");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_queue_backpressure_answers_429_with_retry_after() {
        let dir = tmpdir("backpressure");
        // Capacity 1 and a fat throttle: the first campaign occupies the
        // worker long enough that the queue state below is deterministic.
        let handle = serve(ServeOptions {
            journal_dir: dir.clone(),
            queue_capacity: 1,
            throttle_ms: 400,
            ..ServeOptions::default()
        })
        .expect("binds");
        let addr = handle.addr().to_string();

        let first = tiny(1);
        let (code, _, _) = http_post(&addr, "/campaigns", &first.config_json()).expect("POST 1");
        assert_eq!(code, 202);
        // Wait until the worker has dequeued it — from here until its
        // throttled cell finishes (>= 400 ms away) the queue is empty.
        wait_for_state(&addr, &first.fingerprint(), "running");

        let (code, _, _) = http_post(&addr, "/campaigns", &tiny(2).config_json()).expect("POST 2");
        assert_eq!(code, 202, "one slot in the queue");
        let (code, headers, body) =
            http_post(&addr, "/campaigns", &tiny(3).config_json()).expect("POST 3");
        assert_eq!(code, 429, "queue full: {body}");
        let retry = headers.iter().find(|(name, _)| name == "Retry-After");
        assert_eq!(retry.map(|(_, v)| v.as_str()), Some("2"));
        assert!(body.contains("queue full"), "{body}");

        // Backpressure is advisory, not fatal: the drained queue accepts
        // the same config later.
        wait_for_state(&addr, &tiny(2).fingerprint(), "done");
        let (code, _, _) = http_post(&addr, "/campaigns", &tiny(3).config_json()).expect("retry");
        assert_eq!(code, 202);
        wait_for_state(&addr, &tiny(3).fingerprint(), "done");

        // Metrics carry the whole story and stay valid exposition.
        let (code, text) = http_get(&addr, "/metrics").expect("metrics");
        assert_eq!(code, 200);
        validate_exposition(&text).expect("valid exposition");
        assert!(
            text.contains("grinch_campaign_rejected_full_total 1"),
            "{text}"
        );
        assert!(text.contains("grinch_campaign_completed_total 3"), "{text}");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn endpoints_reject_the_invalid_and_unknown() {
        let dir = tmpdir("errors");
        let handle = serve(ServeOptions {
            journal_dir: dir.clone(),
            ..ServeOptions::default()
        })
        .expect("binds");
        let addr = handle.addr().to_string();

        let (code, _, body) = http_post(&addr, "/campaigns", "not json").expect("POST junk");
        assert_eq!(code, 400, "{body}");
        let (code, body) = http_get(&addr, "/campaigns/feedfacedeadbeef").expect("GET unknown");
        assert_eq!(code, 404, "{body}");
        let (code, _, _) = http_post(&addr, "/metrics", "").expect("POST /metrics");
        assert_eq!(code, 405);

        // Unknown *views* of a known campaign are 404 too.
        let cfg = tiny(9);
        let (code, _, _) = http_post(&addr, "/campaigns", &cfg.config_json()).expect("POST");
        assert_eq!(code, 202);
        let id = cfg.fingerprint();
        let (code, body) = http_get(&addr, &format!("/campaigns/{id}/nonsense")).expect("GET view");
        assert_eq!(code, 404, "{body}");

        // The list endpoint knows it either way.
        let (code, body) = http_get(&addr, "/campaigns").expect("GET list");
        assert_eq!(code, 200);
        assert!(body.contains(&id), "{body}");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
