//! The deterministic shard plan: which cells belong to which shard, and
//! where each shard's journal lives.
//!
//! Shard membership is [`CampaignConfig::shard_of`] — `cell_seed(idx) mod
//! num_shards` — so the partition is a pure function of the campaign
//! identity and the shard count. Two consequences the orchestrator leans
//! on:
//!
//! * any subset of shards can run anywhere, in any order, any number of
//!   times (journals make re-runs no-ops), and the union always covers the
//!   grid exactly once;
//! * the assignment is decorrelated from the row-major grid layout, so
//!   neighbouring cells — which tend to cost similar wall time — spread
//!   across shards instead of clumping into one slow shard.

use grinch_arena::CampaignConfig;
use std::path::{Path, PathBuf};

/// The partition of a campaign's cell grid into `num_shards` shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Campaign identity fingerprint the plan was built for.
    pub campaign_id: String,
    /// Number of shards.
    pub num_shards: usize,
    /// Cell indices per shard, each in ascending index order. Shards may
    /// be empty when there are more shards than cells.
    pub shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the plan for `config` split into `num_shards` shards
    /// (clamped to at least 1).
    pub fn new(config: &CampaignConfig, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let mut shards = vec![Vec::new(); num_shards];
        for idx in 0..config.num_cells() {
            shards[config.shard_of(idx, num_shards)].push(idx);
        }
        Self {
            campaign_id: config.fingerprint(),
            num_shards,
            shards,
        }
    }

    /// Total cells across all shards (the grid size).
    pub fn num_cells(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// The canonical journal filename of one shard:
    /// `CAMPAIGN_<id>.shard-<index>-of-<n>.journal.jsonl`.
    pub fn journal_name(&self, index: usize) -> String {
        format!(
            "CAMPAIGN_{}.shard-{index}-of-{}.journal.jsonl",
            self.campaign_id, self.num_shards
        )
    }

    /// The journal path of one shard under `dir`.
    pub fn journal_path(&self, dir: &Path, index: usize) -> PathBuf {
        dir.join(self.journal_name(index))
    }

    /// Every shard journal path under `dir`, in shard order.
    pub fn journal_paths(&self, dir: &Path) -> Vec<PathBuf> {
        (0..self.num_shards)
            .map(|i| self.journal_path(dir, i))
            .collect()
    }

    /// The canonical aggregated-matrix filename:
    /// `CAMPAIGN_<id>.json`.
    pub fn matrix_name(&self) -> String {
        format!("CAMPAIGN_{}.json", self.campaign_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_the_grid_exactly_once() {
        let cfg = CampaignConfig::full();
        for n in [1usize, 2, 3, 4, 16, 1000] {
            let plan = ShardPlan::new(&cfg, n);
            assert_eq!(plan.num_shards, n);
            assert_eq!(plan.num_cells(), cfg.num_cells());
            let mut seen = vec![false; cfg.num_cells()];
            for (index, shard) in plan.shards.iter().enumerate() {
                let mut sorted = shard.clone();
                sorted.sort_unstable();
                assert_eq!(&sorted, shard, "shard cells are in index order");
                for &idx in shard {
                    assert!(!seen[idx], "cell {idx} assigned twice");
                    assert_eq!(cfg.shard_of(idx, n), index);
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every cell assigned");
        }
        // Shard count 0 clamps to one shard holding everything.
        let plan = ShardPlan::new(&cfg, 0);
        assert_eq!(plan.num_shards, 1);
        assert_eq!(plan.shards[0].len(), cfg.num_cells());
    }

    #[test]
    fn plan_is_a_pure_function_of_the_identity() {
        let cfg = CampaignConfig::smoke();
        let a = ShardPlan::new(&cfg, 3);
        let b = ShardPlan::new(&cfg, 3);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.campaign_id, b.campaign_id);
        // jobs is an execution knob — it must not move cells between
        // shards.
        let mut requeued = cfg.clone();
        requeued.jobs = 16;
        let c = ShardPlan::new(&requeued, 3);
        assert_eq!(a.shards, c.shards);
        assert_eq!(a.campaign_id, c.campaign_id);
    }

    #[test]
    fn journal_names_embed_identity_and_cover() {
        let plan = ShardPlan::new(&CampaignConfig::smoke(), 2);
        let name = plan.journal_name(1);
        assert!(name.starts_with(&format!("CAMPAIGN_{}", plan.campaign_id)));
        assert!(name.contains("shard-1-of-2"));
        assert!(name.ends_with(".journal.jsonl"));
        let paths = plan.journal_paths(Path::new("/tmp/x"));
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
    }
}
