//! The orchestrator's core guarantee, checked against the committed
//! baseline: **any** partition of a campaign's cells into shard journals,
//! aggregated in **any** order, re-assembles a matrix byte-identical to a
//! one-shot `grinch-arena/v1` run — and the canonical 2- and 4-shard
//! plans reproduce `bench/baselines/ARENA_MATRIX.json` exactly.

use grinch_arena::journal::{run_journaled, Journal};
use grinch_arena::{run_campaign, CampaignConfig, CellResult};
use grinch_campaign::aggregate::aggregate_journals;
use grinch_campaign::ShardPlan;
use grinch_telemetry::seed::splitmix64;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Config, one-shot matrix bytes, and the indexed cell results they came from.
type OneShot = (CampaignConfig, String, Vec<(usize, CellResult)>);

/// One smoke sweep, run once and shared by every property case — the
/// partitions below only shuffle *bookkeeping*, never re-execute cells.
fn one_shot() -> &'static OneShot {
    static CACHE: OnceLock<OneShot> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cfg = CampaignConfig::smoke();
        let matrix = run_campaign(&cfg);
        let cells = matrix.cells.iter().cloned().enumerate().collect();
        (cfg, matrix.to_json(), cells)
    })
}

fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("grinch-shard-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Deterministic Fisher-Yates off a sampled seed, so journal *aggregation
/// order* varies per case without `std` RNG.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = splitmix64(seed);
        items.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any assignment of cells to up to 4 journals, written in any order
    /// and merged in any order, aggregates to the one-shot matrix bytes.
    #[test]
    fn any_partition_in_any_order_reassembles_byte_identically(
        num_shards in 1usize..=4,
        assign in prop::collection::vec(0usize..4, 4),
        write_seed in any::<u64>(),
        merge_seed in any::<u64>(),
    ) {
        let (cfg, one_shot_json, cells) = one_shot();
        assert_eq!(assign.len(), cfg.num_cells(), "strategy matches the smoke grid");
        let dir = fresh_dir();

        // Write each part as its own journal, cells in a shuffled order —
        // journals record completion order, which carries no meaning.
        let mut write_order: Vec<usize> = (0..cells.len()).collect();
        shuffle(&mut write_order, write_seed);
        let mut paths = Vec::new();
        for shard in 0..num_shards {
            let path = dir.join(format!("part-{shard}.journal.jsonl"));
            let journal = Journal::create(&path, cfg, None).expect("creates");
            for &i in &write_order {
                let (idx, cell) = &cells[i];
                if assign[*idx] % num_shards == shard {
                    journal
                        .append_cell(*idx, cfg.cell_seed(*idx), cell)
                        .expect("appends");
                }
            }
            paths.push(path);
        }

        shuffle(&mut paths, merge_seed);
        let agg = aggregate_journals(&paths).expect("merges");
        prop_assert!(agg.is_complete());
        let matrix = agg.matrix().expect("assembles");
        prop_assert_eq!(&matrix.to_json(), one_shot_json);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The canonical shard plans, end to end through the real journaled
/// engine: 2-way and 4-way splits — shards executed in *reverse* order —
/// aggregate to the exact bytes committed as the tier-1 arena baseline.
#[test]
fn canonical_shard_plans_reproduce_the_committed_baseline() {
    let baseline_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/baselines/ARENA_MATRIX.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));

    let cfg = CampaignConfig::smoke();
    for shards in [2usize, 4] {
        let dir = fresh_dir();
        let plan = ShardPlan::new(&cfg, shards);
        for index in (0..shards).rev() {
            let outcome = run_journaled(
                &cfg,
                plan.journal_path(&dir, index),
                Some((index, shards)),
                None,
                0,
            )
            .expect("shard runs");
            assert!(outcome.matrix.is_none(), "shard runs assemble no matrix");
        }
        let agg = aggregate_journals(&plan.journal_paths(&dir)).expect("merges");
        assert!(agg.is_complete(), "{shards}-way split covers the grid");
        let matrix = agg.matrix().expect("assembles");
        assert_eq!(
            matrix.to_json(),
            baseline,
            "{shards}-shard aggregation must be byte-identical to the committed baseline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
