//! End-to-end tests of the `grinch-ct` binary: exit-code contract, JSON
//! stability, deny levels, and the cross-validation subcommand on synthetic
//! and real telemetry traces.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grinch-ct"))
}

fn gift_src() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../gift/src")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grinch-ct-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn check_on_gift_fails_the_default_deny_level() {
    let out = bin()
        .args(["check"])
        .arg(gift_src())
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "gift sources contain known leaks"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("table.rs"));
    assert!(stdout.contains("GIFT_SBOX"));
    assert!(stdout.contains("bitwise.rs: clean"));
}

#[test]
fn check_deny_none_reports_without_failing() {
    let out = bin()
        .args(["check", "--deny-level", "none"])
        .arg(gift_src())
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn check_json_is_stable_and_writes_the_out_file() {
    let dir = tmp_dir("json");
    let out_file = dir.join("CT_REPORT.json");
    let run = || {
        let out = bin()
            .args(["check", "--deny-level", "none", "--json", "--out"])
            .arg(&out_file)
            .arg(gift_src())
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(0));
        String::from_utf8(out.stdout).expect("utf8")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "JSON output must be deterministic");
    assert!(first.contains("\"schema\": \"grinch-ct-report/v2\""));
    let written = std::fs::read_to_string(&out_file).expect("out file written");
    assert_eq!(written, first);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_sources_pass_the_strictest_deny_level() {
    let dir = tmp_dir("clean");
    std::fs::write(
        dir.join("clean.rs"),
        "pub fn xor(key: u64, pt: u64) -> u64 { key ^ pt }\n",
    )
    .expect("write");
    let out = bin()
        .args(["check", "--deny-level", "line-safe"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn line_bytes_controls_the_wide_sbox_verdict() {
    // At 8-byte lines the WIDE_SBOX finding is line-safe; at 1-byte lines it
    // becomes a leak and adds one to the denied count.
    let wide = bin()
        .args([
            "check",
            "--deny-level",
            "leak",
            "--line-bytes",
            "8",
            "--json",
        ])
        .arg(gift_src())
        .output()
        .expect("runs");
    let wide_json = String::from_utf8_lossy(&wide.stdout).to_string();
    assert!(wide_json
        .contains("\"table\": \"WIDE_SBOX\", \"table_bytes\": 8, \"severity\": \"line-safe\""));

    let byte = bin()
        .args([
            "check",
            "--deny-level",
            "leak",
            "--line-bytes",
            "1",
            "--json",
        ])
        .arg(gift_src())
        .output()
        .expect("runs");
    let byte_json = String::from_utf8_lossy(&byte.stdout).to_string();
    assert!(
        byte_json.contains("\"table\": \"WIDE_SBOX\", \"table_bytes\": 8, \"severity\": \"leak\"")
    );
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn missing_or_empty_targets_exit_two_with_a_no_sources_message() {
    let out = bin()
        .args(["check", "/nonexistent/definitely-not-here"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no .rs sources under /nonexistent/definitely-not-here"),
        "{stderr}"
    );

    let dir = tmp_dir("empty");
    let out = bin().args(["check"]).arg(&dir).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "empty dir is never a pass");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no .rs sources under"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn target_flag_reads_the_config_and_matches_the_rectangle_golden() {
    let out = bin()
        .current_dir(repo_root())
        .args([
            "check",
            "--target",
            "crates/ct/fixtures/rectangle",
            "--json",
            "--deny-level",
            "none",
        ])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"target\": \"crates/ct/fixtures/rectangle\""));
    assert!(
        json.contains("RECT_SBOX"),
        "config-declared secrets drive the analysis"
    );
    let golden = repo_root().join("bench/baselines/CT_RECTANGLE.json");
    let pinned = std::fs::read_to_string(golden).expect("rectangle golden committed");
    assert_eq!(json, pinned, "rectangle verdicts are golden-pinned");
}

#[test]
fn gift_target_matches_the_pinned_golden_byte_for_byte() {
    let out = bin()
        .current_dir(repo_root())
        .args([
            "check",
            "--target",
            "crates/gift",
            "--json",
            "--deny-level",
            "none",
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).expect("utf8");
    let golden = repo_root().join("bench/baselines/CT_REPORT.json");
    let pinned = std::fs::read_to_string(golden).expect("gift golden committed");
    assert_eq!(json, pinned, "gift verdicts are golden-pinned");
}

#[test]
fn workspace_determinism_scan_matches_the_pinned_golden() {
    // Doubles as the "every workspace source parses" pin: the scan fails
    // with exit 2 if any crate stops parsing.
    let out = bin()
        .current_dir(repo_root())
        .args([
            "determinism",
            "--target",
            ".",
            "--json",
            "--deny-level",
            "none",
        ])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("utf8");
    let golden = repo_root().join("bench/baselines/DETERMINISM.json");
    let pinned = std::fs::read_to_string(golden).expect("determinism golden committed");
    assert_eq!(
        json, pinned,
        "workspace determinism verdicts are golden-pinned"
    );
}

#[test]
fn determinism_subcommand_gates_on_hazards_and_honors_allows() {
    let dir = tmp_dir("det");
    std::fs::write(
        dir.join("emit.rs"),
        "use std::collections::HashMap;\n\
         use std::fmt::Write;\n\
         pub fn dump(m: &HashMap<String, u64>) -> String {\n\
             let mut out = String::new();\n\
             for (k, v) in m.iter() {\n\
                 writeln!(out, \"{k}={v}\").unwrap();\n\
             }\n\
             out\n\
         }\n",
    )
    .expect("write");
    let out = bin()
        .args(["determinism"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "unsuppressed hazards gate");
    assert!(String::from_utf8_lossy(&out.stdout).contains("hash-order-emission"));

    let allowed = bin()
        .args(["determinism", "--allow", "emit.rs:hash-order-emission"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert_eq!(
        allowed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&allowed.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sarif_flag_writes_a_sarif_2_1_0_document() {
    let dir = tmp_dir("sarif");
    let sarif_file = dir.join("gift.sarif");
    let out = bin()
        .current_dir(repo_root())
        .args([
            "check",
            "--target",
            "crates/gift",
            "--deny-level",
            "none",
            "--sarif",
        ])
        .arg(&sarif_file)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let sarif = std::fs::read_to_string(&sarif_file).expect("sarif written");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"grinch-ct\""));
    assert!(sarif.contains("\"ruleId\": \"secret-index\""));
    assert!(sarif.contains("\"suppressions\": [{\"kind\": \"inSource\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    let unknown = bin().args(["frobnicate"]).output().expect("runs");
    assert_eq!(unknown.status.code(), Some(2));
    let bad_level = bin()
        .args(["check", "--deny-level", "sometimes", "src"])
        .output()
        .expect("runs");
    assert_eq!(bad_level.status.code(), Some(2));
    let missing = bin().args(["check"]).output().expect("runs");
    assert_eq!(missing.status.code(), Some(2));
}

/// Builds a synthetic trace whose `attack.stage0.joint.*` counters either
/// fully determine the observed line from the pattern (leaky) or are
/// constant (flat).
fn write_trace(dir: &Path, name: &str, leaky: bool) -> PathBuf {
    let tel = grinch_telemetry::Telemetry::new();
    for p in 0..16u8 {
        let line = if leaky { p as usize } else { 3 };
        tel.counter_add(&format!("attack.stage0.joint.p{p:x}.l{line}"), 64);
    }
    let path = dir.join(name);
    std::fs::write(&path, tel.to_jsonl()).expect("write trace");
    path
}

#[test]
fn cross_validate_agrees_on_consistent_synthetic_traces() {
    let dir = tmp_dir("xval");
    let leaky = write_trace(&dir, "leaky.jsonl", true);
    let flat = write_trace(&dir, "flat.jsonl", false);

    // table.rs statically leaks; a maximally-informative trace agrees.
    let out = bin()
        .args(["cross-validate"])
        .arg(gift_src())
        .arg("--trace")
        .arg(&leaky)
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("AGREE"));

    // bitwise.rs is statically clean; a flat trace agrees.
    let out = bin()
        .args(["cross-validate", "--impl-file", "bitwise.rs"])
        .arg(gift_src())
        .arg("--trace")
        .arg(&flat)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0));

    // table.rs statically leaks but the flat trace shows nothing: exit 1.
    let out = bin()
        .args(["cross-validate", "--json"])
        .arg(gift_src())
        .arg("--trace")
        .arg(&flat)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(json.contains("\"agree\": false"));
    assert!(json.contains("\"schema\": \"grinch-ct-crossval/v1\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_validate_agrees_on_the_quickstart_trace_when_present() {
    // The committed quickstart trace (regenerated by the CI report job)
    // drives the acceptance check from the issue: static "table.rs leaks"
    // must agree with the profiler's MI estimate.
    let trace =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/quickstart.telemetry.jsonl");
    if !trace.exists() {
        eprintln!("skipping: {} not generated", trace.display());
        return;
    }
    let out = bin()
        .args(["cross-validate"])
        .arg(gift_src())
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("AGREE"), "{stdout}");
}
