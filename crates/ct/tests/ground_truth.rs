//! Ground-truth tests: the analyzer's verdicts on the real `crates/gift`
//! sources, pinned as required by the paper reproduction.
//!
//! * `table.rs` (the GRINCH attack target) is flagged: its S-box lookup is
//!   secret-indexed, reached from both the GIFT-64 and GIFT-128 round
//!   functions;
//! * `bitwise.rs` (the constant-time reference) is clean;
//! * `countermeasure.rs`'s `WIDE_SBOX` is `line-safe` at 8-byte cache lines
//!   but a leak at byte granularity — the paper's own countermeasure
//!   argument, derived statically;
//! * `present.rs` (the comparison cipher) is flagged;
//! * `sbox.rs` / `observer.rs` leak only through cross-module callers —
//!   findings the interprocedural engine adds over the per-module one.
//!
//! Findings are matched by kind/table/function, not hard line numbers, so
//! ordinary edits to the gift sources don't invalidate the ground truth.

use grinch_ct::{analyze_dir, Finding, FindingKind, Report, Severity};
use std::path::Path;

fn gift_src() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../gift/src")
}

fn analyze(line_bytes: u64) -> Report {
    analyze_dir(&gift_src(), line_bytes).expect("gift sources parse and analyze")
}

fn active<'r>(report: &'r Report, file: &str) -> Vec<&'r Finding> {
    report.active_for_file(file)
}

#[test]
fn table_rs_sbox_lookup_is_flagged_with_both_provenance_paths() {
    let report = analyze(8);
    let findings = active(&report, "table.rs");
    assert_eq!(findings.len(), 1, "exactly the S-box lookup: {findings:#?}");
    let f = findings[0];
    assert_eq!(f.kind, FindingKind::SecretIndex);
    assert_eq!(f.table.as_deref(), Some("GIFT_SBOX"));
    assert_eq!(f.table_bytes, Some(16));
    assert_eq!(
        f.severity,
        Severity::Leak,
        "16-byte table spans two 8-byte lines"
    );
    assert_eq!(f.function, "sbox_lookup");
    let prov = f.provenance.join("\n");
    assert!(
        prov.contains("sub_cells_64"),
        "GIFT-64 path must witness the lookup: {prov}"
    );
    assert!(
        prov.contains("TableGift128::run_single_round"),
        "GIFT-128 path must witness the lookup: {prov}"
    );
}

#[test]
fn bitwise_rs_is_clean() {
    let report = analyze(8);
    assert!(
        report.findings.iter().all(|f| f.file != "bitwise.rs"),
        "constant-time reference must have zero findings (even suppressed): {:#?}",
        report
            .findings
            .iter()
            .filter(|f| f.file == "bitwise.rs")
            .collect::<Vec<_>>()
    );
}

#[test]
fn helper_modules_are_clean() {
    let report = analyze(8);
    for file in [
        "constants.rs",
        "key_schedule.rs",
        "lib.rs",
        "permutation.rs",
        "state.rs",
        "vectors.rs",
    ] {
        assert!(
            report.files.iter().any(|f| f == file),
            "{file} must be analyzed"
        );
        assert!(
            active(&report, file).is_empty(),
            "{file} must be clean: {:#?}",
            active(&report, file)
        );
    }
}

#[test]
fn interprocedural_findings_reach_sbox_inv_and_the_observer() {
    // These two modules only leak through callers in *other* files: the
    // decryption path feeds `sbox_inv`'s GIFT_SBOX_INV lookup from
    // bitwise.rs, and the observer's `debug_assert!` sees a secret nibble
    // via the table implementations. The per-module engine missed both.
    let report = analyze(8);
    let sbox = active(&report, "sbox.rs");
    assert!(
        sbox.iter().any(|f| {
            f.kind == FindingKind::SecretIndex && f.table.as_deref() == Some("GIFT_SBOX_INV")
        }),
        "sbox_inv's inverse-table lookup must be flagged: {sbox:#?}"
    );
    assert!(
        sbox.iter()
            .flat_map(|f| &f.provenance)
            .any(|p| p.contains("bitwise.rs")),
        "provenance must witness the cross-module caller: {sbox:#?}"
    );
    let observer = active(&report, "observer.rs");
    assert!(
        observer
            .iter()
            .any(|f| f.kind == FindingKind::SecretBranch && f.detail.contains("debug_assert")),
        "observer's debug_assert on the secret index must be flagged: {observer:#?}"
    );
}

#[test]
fn wide_sbox_is_line_safe_at_wide_lines_but_leaks_at_byte_granularity() {
    let wide = analyze(8);
    let findings = active(&wide, "countermeasure.rs");
    assert_eq!(
        findings.len(),
        1,
        "only the WIDE_SBOX row lookup remains: {findings:#?}"
    );
    let f = findings[0];
    assert_eq!(f.kind, FindingKind::SecretIndex);
    assert_eq!(f.table.as_deref(), Some("WIDE_SBOX"));
    assert_eq!(f.table_bytes, Some(8));
    assert_eq!(
        f.severity,
        Severity::LineSafe,
        "8-byte table in one 8-byte line is invisible to a line observer"
    );

    let byte = analyze(1);
    let findings = active(&byte, "countermeasure.rs");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].severity,
        Severity::Leak,
        "byte-granularity observer sees which entry was read"
    );
}

#[test]
fn present_rs_table_lookups_are_flagged() {
    let report = analyze(8);
    let findings = active(&report, "present.rs");
    let index_findings: Vec<_> = findings
        .iter()
        .filter(|f| f.kind == FindingKind::SecretIndex)
        .collect();
    assert!(
        index_findings.len() >= 6,
        "key schedule (3) + encrypt + decrypt + table round: {index_findings:#?}"
    );
    assert!(index_findings
        .iter()
        .all(|f| f.severity == Severity::Leak && f.table_bytes == Some(16)));
    let tables: std::collections::BTreeSet<_> = index_findings
        .iter()
        .filter_map(|f| f.table.as_deref())
        .collect();
    assert!(tables.contains("PRESENT_SBOX"));
    assert!(tables.contains("PRESENT_SBOX_INV"));
    for func in [
        "expand_present",
        "Present::encrypt",
        "Present::decrypt",
        "TablePresent::run_single_round",
    ] {
        assert!(
            index_findings.iter().any(|f| f.function == func),
            "{func} must be flagged"
        );
    }
}

#[test]
fn deliberate_branches_are_suppressed_with_reasons() {
    let report = analyze(8);
    let suppressed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_some())
        .collect();
    // The PRESENT key-size dispatch and the AEAD tag comparison are the two
    // reviewed, deliberately non-constant-time branches.
    assert!(
        suppressed
            .iter()
            .any(|f| f.file == "present.rs" && f.kind == FindingKind::SecretBranch),
        "PRESENT key-size match must be ct-allowed: {suppressed:#?}"
    );
    assert!(
        suppressed
            .iter()
            .any(|f| f.file == "aead.rs" && f.kind == FindingKind::SecretBranch),
        "AEAD tag comparison must be ct-allowed: {suppressed:#?}"
    );
    assert!(
        active(&report, "aead.rs").is_empty(),
        "aead.rs has no unsuppressed findings"
    );
}

#[test]
fn deny_counts_reflect_only_unsuppressed_leaks() {
    let report = analyze(8);
    let leaks = report.denied(grinch_ct::DenyLevel::Leak);
    let all = report.denied(grinch_ct::DenyLevel::LineSafe);
    // 1 (table.rs) + 6 (present.rs) + 2 (sbox.rs) + 1 (observer.rs)
    // unsuppressed leaks; the WIDE_SBOX line-safe finding only counts at
    // the stricter level.
    assert_eq!(leaks, 10, "{report}");
    assert_eq!(all, leaks + 1, "{report}");
    assert_eq!(report.denied(grinch_ct::DenyLevel::None), 0);
}

#[test]
fn json_report_is_stable_across_runs() {
    let a = analyze(8).to_json();
    let b = analyze(8).to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"schema\": \"grinch-ct-report/v2\""));
}
