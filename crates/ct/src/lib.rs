//! # grinch-ct
//!
//! A source-level secret-taint constant-time analyzer for the GIFT
//! implementations in this workspace. It statically decides the property
//! GRINCH exploits dynamically: *does this implementation's memory or
//! control-flow shape depend on the key?*
//!
//! The pipeline is entirely self-contained (no proc macros, no network
//! dependencies):
//!
//! 1. [`lexer`] — tokenizes Rust source and records `// ct-allow: <reason>`
//!    suppression comments;
//! 2. [`ast`] — a lightweight recursive-descent parser producing just enough
//!    structure for dataflow: functions, consts, structs, expressions;
//! 3. [`taint`] — module-scoped, field-sensitive taint propagation from
//!    declared secret sources (`Key`, round keys, cipher state) to three
//!    sink kinds: secret-dependent indexing, branches, and loop bounds;
//! 4. [`report`] — severity under a configurable cache-line model (a table
//!    that fits in one line is `line-safe` to a line-granularity observer),
//!    deny policies, and stable JSON;
//! 5. [`crossval`] — joins static verdicts with `grinch-obs` empirical
//!    mutual-information estimates from a telemetry trace, so the analyzer
//!    and the profiler check each other.
//!
//! ```
//! let src = "fn f(key: u64) -> u8 { T[(key & 0xf) as usize] }\nconst T: [u8; 16] = [0; 16];";
//! let report = grinch_ct::analyze_sources(&[("demo.rs".to_string(), src.to_string())], 8)
//!     .expect("parses");
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].kind, grinch_ct::report::FindingKind::SecretIndex);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod crossval;
pub mod lexer;
pub mod report;
pub mod taint;

pub use crossval::{cross_check, CrossCheck, DefendedCheck};
pub use report::{DenyLevel, Finding, FindingKind, Report, Severity};
pub use taint::{Registry, SecretConfig};

use std::path::Path;

/// An analysis-level error: I/O or parse failure with its file label.
#[derive(Clone, Debug)]
pub struct AnalysisError {
    /// File the error occurred in.
    pub file: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

impl std::error::Error for AnalysisError {}

/// Analyzes in-memory `(label, source)` pairs with the default secret
/// configuration and the given cache-line size in bytes.
pub fn analyze_sources(
    sources: &[(String, String)],
    line_bytes: u64,
) -> Result<Report, AnalysisError> {
    let config = SecretConfig::default();
    let mut parsed = Vec::new();
    for (label, src) in sources {
        let file = ast::parse_file(src).map_err(|e| AnalysisError {
            file: label.clone(),
            message: format!("parse error at line {}: {}", e.line, e.message),
        })?;
        parsed.push((label.clone(), file));
    }
    let registry = Registry::build(&parsed, &config);
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for (label, module) in &parsed {
        findings.extend(taint::analyze_module(label, module, &config, &registry));
        files.push(label.clone());
    }
    Ok(Report::new(findings, files, line_bytes))
}

/// Analyzes every `.rs` file under `path` (a file or a directory; one level
/// of recursion into subdirectories). Labels are paths relative to `path`.
pub fn analyze_dir(path: &Path, line_bytes: u64) -> Result<Report, AnalysisError> {
    let mut sources = Vec::new();
    collect_rs_files(path, path, &mut sources)?;
    sources.sort();
    let loaded = sources
        .into_iter()
        .map(|(label, p)| {
            std::fs::read_to_string(&p)
                .map(|src| (label.clone(), src))
                .map_err(|e| AnalysisError {
                    file: label,
                    message: e.to_string(),
                })
        })
        .collect::<Result<Vec<_>, _>>()?;
    if loaded.is_empty() {
        return Err(AnalysisError {
            file: path.display().to_string(),
            message: "no .rs files found".to_string(),
        });
    }
    analyze_sources(&loaded, line_bytes)
}

fn collect_rs_files(
    root: &Path,
    path: &Path,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> Result<(), AnalysisError> {
    let meta = std::fs::metadata(path).map_err(|e| AnalysisError {
        file: path.display().to_string(),
        message: e.to_string(),
    })?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            let label = path
                .strip_prefix(root)
                .map(|p| p.display().to_string())
                .ok()
                .filter(|l| !l.is_empty())
                .unwrap_or_else(|| {
                    path.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| path.display().to_string())
                });
            out.push((label, path.to_path_buf()));
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(path).map_err(|e| AnalysisError {
        file: path.display().to_string(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalysisError {
            file: path.display().to_string(),
            message: e.to_string(),
        })?;
        let p = entry.path();
        if p.is_dir() {
            // One level of nesting covers `src/` and `src/bin/` layouts
            // without wandering into `target/`.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            for sub in std::fs::read_dir(&p).into_iter().flatten().flatten() {
                let sp = sub.path();
                if sp.is_file() {
                    collect_rs_files(root, &sp, out)?;
                }
            }
        } else {
            collect_rs_files(root, &p, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sources_end_to_end() {
        let sources =
            vec![
            (
                "leaky.rs".to_string(),
                "const T: [u8; 16] = [0; 16];\nfn f(key: u64) -> u8 { T[(key & 0xf) as usize] }"
                    .to_string(),
            ),
            ("clean.rs".to_string(), "fn g(x: u64) -> u64 { x ^ 1 }".to_string()),
        ];
        let report = analyze_sources(&sources, 8).expect("analyzes");
        assert_eq!(report.files.len(), 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "leaky.rs");
        assert!(report.active_for_file("clean.rs").is_empty());
    }

    #[test]
    fn parse_errors_carry_the_file_label() {
        let sources = vec![("bad.rs".to_string(), "fn f( {".to_string())];
        let err = analyze_sources(&sources, 8).unwrap_err();
        assert_eq!(err.file, "bad.rs");
    }
}
