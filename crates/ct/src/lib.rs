//! # grinch-ct
//!
//! A source-level static analysis suite for this workspace, with two
//! engines behind one CLI:
//!
//! * the **taint engine** (`grinch-ct check`) statically decides the
//!   property GRINCH exploits dynamically — *does this implementation's
//!   memory or control-flow shape depend on the key?* — for any target
//!   crate, with secret roots from `ct-config.toml` or `// ct-secret`
//!   annotations;
//! * the **determinism engine** (`grinch-ct determinism`) flags the hazards
//!   that would silently break the repo's byte-identity invariants:
//!   hash-order iteration reaching emission, unseeded RNG, wall-clock
//!   values in exported artifacts, thread-identity aggregation.
//!
//! The pipeline is entirely self-contained (no proc macros, no network
//! dependencies):
//!
//! 1. [`lexer`] — tokenizes Rust source and records `// ct-allow:`,
//!    `// det-allow:` and `// ct-secret` annotation comments;
//! 2. [`ast`] — a lightweight recursive-descent parser producing just enough
//!    structure for dataflow: functions, consts, structs, expressions;
//! 3. [`callgraph`] — crate-wide function table with module-local-first,
//!    unambiguous-only cross-module resolution;
//! 4. [`taint`] — crate-scoped, field-sensitive taint propagation from
//!    declared secret sources to five sink kinds: secret-dependent
//!    indexing, branches, loop bounds, early exits, and table strides;
//! 5. [`determinism`] — the byte-identity hazard lint;
//! 6. [`config`] — the per-target `ct-config.toml` loader;
//! 7. [`report`] — severity under a configurable cache-line model, deny
//!    policies, and stable JSON (`grinch-ct-report/v2`);
//! 8. [`sarif`] — SARIF 2.1.0 rendering for CI annotations;
//! 9. [`crossval`] — joins static verdicts with `grinch-obs` empirical
//!    mutual-information estimates from a telemetry trace, so the analyzer
//!    and the profiler check each other.
//!
//! ```
//! let src = "fn f(key: u64) -> u8 { T[(key & 0xf) as usize] }\nconst T: [u8; 16] = [0; 16];";
//! let report = grinch_ct::analyze_sources(&[("demo.rs".to_string(), src.to_string())], 8)
//!     .expect("parses");
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].kind, grinch_ct::report::FindingKind::SecretIndex);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod config;
pub mod crossval;
pub mod determinism;
pub mod lexer;
pub mod report;
pub mod sarif;
pub mod taint;

pub use config::TargetConfig;
pub use crossval::{cross_check, CrossCheck, DefendedCheck};
pub use report::{DenyLevel, Engine, Finding, FindingKind, Report, Severity};
pub use taint::{Registry, SecretConfig};

use std::path::Path;

/// An analysis-level error: I/O or parse failure with its file label.
#[derive(Clone, Debug)]
pub struct AnalysisError {
    /// File the error occurred in.
    pub file: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

impl std::error::Error for AnalysisError {}

/// Parses in-memory `(label, source)` pairs into ASTs.
pub fn parse_sources(
    sources: &[(String, String)],
) -> Result<Vec<(String, ast::SourceFile)>, AnalysisError> {
    let mut parsed = Vec::new();
    for (label, src) in sources {
        let file = ast::parse_file(src).map_err(|e| AnalysisError {
            file: label.clone(),
            message: format!("parse error at line {}: {}", e.line, e.message),
        })?;
        parsed.push((label.clone(), file));
    }
    Ok(parsed)
}

/// Analyzes in-memory `(label, source)` pairs with the default secret
/// configuration and the given cache-line size in bytes.
pub fn analyze_sources(
    sources: &[(String, String)],
    line_bytes: u64,
) -> Result<Report, AnalysisError> {
    analyze_sources_with(sources, &SecretConfig::default(), line_bytes)
}

/// Analyzes in-memory `(label, source)` pairs under an explicit secret
/// configuration.
pub fn analyze_sources_with(
    sources: &[(String, String)],
    config: &SecretConfig,
    line_bytes: u64,
) -> Result<Report, AnalysisError> {
    let parsed = parse_sources(sources)?;
    let registry = Registry::build(&parsed, config);
    let findings = taint::analyze_crate(&parsed, config, &registry);
    let files = parsed.into_iter().map(|(label, _)| label).collect();
    Ok(Report::new(findings, files, line_bytes))
}

/// Analyzes every `.rs` file under `path` with the default secret
/// configuration. Labels are paths relative to `path`.
pub fn analyze_dir(path: &Path, line_bytes: u64) -> Result<Report, AnalysisError> {
    analyze_dir_with(path, &SecretConfig::default(), line_bytes)
}

/// Analyzes every `.rs` file under `path` (a file or a directory, recursing
/// into subdirectories but skipping `target/`) under an explicit secret
/// configuration.
pub fn analyze_dir_with(
    path: &Path,
    config: &SecretConfig,
    line_bytes: u64,
) -> Result<Report, AnalysisError> {
    analyze_sources_with(&load_rs_sources(path)?, config, line_bytes)
}

/// Runs the determinism lint over every `.rs` file under `path`. The
/// `target` label lands in the report; `allow` holds config-level
/// suppressions (`file-suffix` or `file-suffix:kind` entries).
pub fn determinism_dir(
    path: &Path,
    target: &str,
    allow: &[String],
) -> Result<Report, AnalysisError> {
    let parsed = parse_sources(&load_rs_sources(path)?)?;
    let findings = determinism::lint_files(&parsed, allow);
    let files = parsed.into_iter().map(|(label, _)| label).collect();
    Ok(Report::determinism(findings, files, target.to_string()))
}

/// Reads every `.rs` file under `path` into `(label, source)` pairs, sorted
/// by label. Errors with "no .rs sources under <path>" if none exist (a
/// missing directory is the same condition: nothing to analyze is never a
/// pass).
pub fn load_rs_sources(path: &Path) -> Result<Vec<(String, String)>, AnalysisError> {
    let mut sources = Vec::new();
    if path.exists() {
        collect_rs_files(path, path, &mut sources)?;
    }
    sources.sort();
    if sources.is_empty() {
        return Err(AnalysisError {
            file: path.display().to_string(),
            message: format!("no .rs sources under {}", path.display()),
        });
    }
    sources
        .into_iter()
        .map(|(label, p)| {
            std::fs::read_to_string(&p)
                .map(|src| (label.clone(), src))
                .map_err(|e| AnalysisError {
                    file: label,
                    message: e.to_string(),
                })
        })
        .collect()
}

fn collect_rs_files(
    root: &Path,
    path: &Path,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> Result<(), AnalysisError> {
    let meta = std::fs::metadata(path).map_err(|e| AnalysisError {
        file: path.display().to_string(),
        message: e.to_string(),
    })?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            let label = path
                .strip_prefix(root)
                .map(|p| p.display().to_string())
                .ok()
                .filter(|l| !l.is_empty())
                .unwrap_or_else(|| {
                    path.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| path.display().to_string())
                });
            out.push((label, path.to_path_buf()));
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(path).map_err(|e| AnalysisError {
        file: path.display().to_string(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalysisError {
            file: path.display().to_string(),
            message: e.to_string(),
        })?;
        let p = entry.path();
        if p.is_dir() {
            // Never wander into build output.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(root, &p, out)?;
        } else {
            collect_rs_files(root, &p, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sources_end_to_end() {
        let sources =
            vec![
            (
                "leaky.rs".to_string(),
                "const T: [u8; 16] = [0; 16];\nfn f(key: u64) -> u8 { T[(key & 0xf) as usize] }"
                    .to_string(),
            ),
            ("clean.rs".to_string(), "fn g(x: u64) -> u64 { x ^ 1 }".to_string()),
        ];
        let report = analyze_sources(&sources, 8).expect("analyzes");
        assert_eq!(report.files.len(), 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "leaky.rs");
        assert!(report.active_for_file("clean.rs").is_empty());
    }

    #[test]
    fn parse_errors_carry_the_file_label() {
        let sources = vec![("bad.rs".to_string(), "fn f( {".to_string())];
        let err = analyze_sources(&sources, 8).unwrap_err();
        assert_eq!(err.file, "bad.rs");
    }
}
