//! Findings, severity under a cache-line model, deny policies, and the
//! stable JSON report (`grinch-ct-report/v2`).
//!
//! Severity is assigned *after* taint analysis because it depends on the
//! attacker's observation granularity: a secret-indexed table that fits in a
//! single cache line is invisible to a line-granularity observer (the
//! paper's wide-line countermeasure), but still leaks to a byte-granularity
//! one. Branches and loop bounds perturb the instruction stream and timing,
//! so they are leaks at every granularity. Determinism hazards (the second
//! engine) are not cache leaks at all — they threaten the repo's
//! byte-identity invariants — and carry their own `hazard` severity.

use std::collections::BTreeMap;
use std::fmt;

/// The leak and hazard classes the two engines report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// Secret-dependent array/table index (load or store address).
    SecretIndex,
    /// Secret-dependent branch condition (`if`, `match`, guard, assert).
    SecretBranch,
    /// Secret-dependent loop trip count (range bound, `while`, `take`/`skip`).
    SecretLoopBound,
    /// Secret-dependent early exit (`return`, `break`, `continue` under a
    /// tainted branch).
    SecretEarlyReturn,
    /// Secret-dependent table footprint: branch arms touch different tables
    /// or access widths even though each index is public.
    SecretStride,
    /// Determinism: `HashMap`/`HashSet` iteration order reaching
    /// serialization or emission.
    HashOrderEmission,
    /// Determinism: RNG constructed outside the blessed seeded paths.
    UnseededRng,
    /// Determinism: wall-clock value stored into an exported artifact
    /// struct.
    WallClockArtifact,
    /// Determinism: thread-identity or scheduling order feeding aggregation.
    ThreadOrdering,
}

impl FindingKind {
    /// Stable identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::SecretIndex => "secret-index",
            FindingKind::SecretBranch => "secret-branch",
            FindingKind::SecretLoopBound => "secret-loop-bound",
            FindingKind::SecretEarlyReturn => "secret-early-return",
            FindingKind::SecretStride => "secret-stride",
            FindingKind::HashOrderEmission => "hash-order-emission",
            FindingKind::UnseededRng => "unseeded-rng",
            FindingKind::WallClockArtifact => "wall-clock-artifact",
            FindingKind::ThreadOrdering => "thread-ordering",
        }
    }

    /// Whether this kind comes from the determinism engine.
    pub fn is_hazard(self) -> bool {
        matches!(
            self,
            FindingKind::HashOrderEmission
                | FindingKind::UnseededRng
                | FindingKind::WallClockArtifact
                | FindingKind::ThreadOrdering
        )
    }
}

/// Severity of a finding under the configured cache-line granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The table fits in one cache line: a line-granularity observer learns
    /// nothing from which entry was read.
    LineSafe,
    /// Observable secret-dependent behavior at the configured granularity.
    Leak,
    /// A determinism hazard: not a cache leak, but a threat to byte-identity
    /// of exported artifacts.
    Hazard,
}

impl Severity {
    /// Stable identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::LineSafe => "line-safe",
            Severity::Leak => "leak",
            Severity::Hazard => "hazard",
        }
    }
}

/// Which engine produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Secret-taint dataflow (`grinch-ct check`).
    Taint,
    /// Byte-identity hazard lint (`grinch-ct determinism`).
    Determinism,
}

impl Engine {
    /// Stable identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Taint => "taint",
            Engine::Determinism => "determinism",
        }
    }
}

/// One analyzer finding with provenance.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File label (relative path) the finding is in.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Leak class.
    pub kind: FindingKind,
    /// Qualified name of the containing function.
    pub function: String,
    /// Const table being indexed, when identified.
    pub table: Option<String>,
    /// Total table size in bytes, when the definition was resolvable.
    pub table_bytes: Option<u64>,
    /// Severity under the report's cache-line model.
    pub severity: Severity,
    /// Human-readable taint chain from a declared secret to this site.
    pub provenance: Vec<String>,
    /// `ct-allow` reason if the finding is suppressed.
    pub suppressed: Option<String>,
    /// Short description of the leak site.
    pub detail: String,
}

/// How strict `grinch-ct check` is about findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenyLevel {
    /// Fail on any unsuppressed `leak`-severity finding (default).
    Leak,
    /// Fail on any unsuppressed finding, including `line-safe` ones.
    LineSafe,
    /// Never fail; report only.
    None,
}

impl DenyLevel {
    /// Parses a CLI value (`leak` | `line-safe` | `none`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "leak" => Some(DenyLevel::Leak),
            "line-safe" => Some(DenyLevel::LineSafe),
            "none" => Some(DenyLevel::None),
            _ => None,
        }
    }
}

/// A full analysis report over a set of files.
#[derive(Clone, Debug)]
pub struct Report {
    /// Engine that produced the findings.
    pub engine: Engine,
    /// Target label (the directory the engine was pointed at).
    pub target: String,
    /// Cache-line size (bytes) used for severity assignment.
    pub line_bytes: u64,
    /// All findings, including suppressed ones, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Labels of every file analyzed (so "clean" is distinguishable from
    /// "not analyzed").
    pub files: Vec<String>,
}

impl Report {
    /// Builds a taint report, assigning each finding's severity under the
    /// given cache-line size.
    pub fn new(findings: Vec<Finding>, files: Vec<String>, line_bytes: u64) -> Self {
        Report::build(Engine::Taint, String::new(), findings, files, line_bytes)
    }

    /// Builds a determinism report (all findings get `hazard` severity).
    pub fn determinism(findings: Vec<Finding>, files: Vec<String>, target: String) -> Self {
        Report::build(Engine::Determinism, target, findings, files, 0)
    }

    /// Sets the target label (builder-style, used by the CLI).
    pub fn with_target(mut self, target: &str) -> Self {
        self.target = target.to_string();
        self
    }

    fn build(
        engine: Engine,
        target: String,
        mut findings: Vec<Finding>,
        files: Vec<String>,
        line_bytes: u64,
    ) -> Self {
        for f in &mut findings {
            f.severity = match (f.kind, f.table_bytes) {
                _ if f.kind.is_hazard() => Severity::Hazard,
                (FindingKind::SecretIndex, Some(bytes)) if bytes <= line_bytes => {
                    Severity::LineSafe
                }
                _ => Severity::Leak,
            };
        }
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.kind, &a.detail).cmp(&(&b.file, b.line, b.kind, &b.detail))
        });
        Report {
            engine,
            target,
            line_bytes,
            findings,
            files,
        }
    }

    /// Findings that are not suppressed by a `ct-allow` comment.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of findings that violate the given deny level.
    pub fn denied(&self, level: DenyLevel) -> usize {
        match level {
            DenyLevel::None => 0,
            DenyLevel::Leak => self
                .active()
                .filter(|f| matches!(f.severity, Severity::Leak | Severity::Hazard))
                .count(),
            DenyLevel::LineSafe => self.active().count(),
        }
    }

    /// Unsuppressed findings for one file label.
    pub fn active_for_file(&self, file: &str) -> Vec<&Finding> {
        self.active().filter(|f| f.file == file).collect()
    }

    /// Stable JSON rendering (schema `grinch-ct-report/v2`). Keys and
    /// ordering are deterministic so CI diffs are meaningful; the per-finding
    /// objects are rendered exactly as in v1 so pinned verdicts carry over
    /// byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"grinch-ct-report/v2\",\n");
        out.push_str(&format!(
            "  \"engine\": {},\n",
            json_string(self.engine.as_str())
        ));
        out.push_str(&format!("  \"target\": {},\n", json_string(&self.target)));
        out.push_str(&format!("  \"line_bytes\": {},\n", self.line_bytes));
        out.push_str(&format!(
            "  \"files\": [{}],\n",
            self.files
                .iter()
                .map(|f| json_string(f))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let leaks = self
            .active()
            .filter(|f| f.severity == Severity::Leak)
            .count();
        let line_safe = self
            .active()
            .filter(|f| f.severity == Severity::LineSafe)
            .count();
        let hazards = self
            .active()
            .filter(|f| f.severity == Severity::Hazard)
            .count();
        let suppressed = self.findings.len() - self.active().count();
        out.push_str(&format!(
            "  \"counts\": {{\"leak\": {leaks}, \"line_safe\": {line_safe}, \"hazard\": {hazards}, \"suppressed\": {suppressed}}},\n"
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": {}, ", json_string(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"kind\": {}, ", json_string(f.kind.as_str())));
            out.push_str(&format!("\"function\": {}, ", json_string(&f.function)));
            match &f.table {
                Some(t) => out.push_str(&format!("\"table\": {}, ", json_string(t))),
                None => out.push_str("\"table\": null, "),
            }
            match f.table_bytes {
                Some(b) => out.push_str(&format!("\"table_bytes\": {b}, ")),
                None => out.push_str("\"table_bytes\": null, "),
            }
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_string(f.severity.as_str())
            ));
            match &f.suppressed {
                Some(r) => out.push_str(&format!("\"suppressed\": {}, ", json_string(r))),
                None => out.push_str("\"suppressed\": null, "),
            }
            out.push_str(&format!("\"detail\": {}, ", json_string(&f.detail)));
            out.push_str(&format!(
                "\"provenance\": [{}]",
                f.provenance
                    .iter()
                    .map(|p| json_string(p))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "grinch-ct report ({} file(s), {}-byte cache lines)",
            self.files.len(),
            self.line_bytes
        )?;
        let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
        for file in &self.files {
            by_file.entry(file).or_default();
        }
        for finding in &self.findings {
            by_file.entry(&finding.file).or_default().push(finding);
        }
        for (file, findings) in &by_file {
            if findings.is_empty() {
                writeln!(f, "\n{file}: clean")?;
                continue;
            }
            writeln!(f, "\n{file}: {} finding(s)", findings.len())?;
            for fd in findings {
                let tag = match &fd.suppressed {
                    Some(reason) => format!("allowed: {reason}"),
                    None => fd.severity.as_str().to_string(),
                };
                writeln!(
                    f,
                    "  {}:{} [{}] [{}] in `{}`: {}",
                    fd.file,
                    fd.line,
                    fd.kind.as_str(),
                    tag,
                    fd.function,
                    fd.detail
                )?;
                if let (Some(table), Some(bytes)) = (&fd.table, fd.table_bytes) {
                    writeln!(f, "      table `{table}` spans {bytes} bytes")?;
                }
                for step in &fd.provenance {
                    writeln!(f, "      via {step}")?;
                }
            }
        }
        Ok(())
    }
}

/// Escapes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind, table_bytes: Option<u64>, suppressed: Option<&str>) -> Finding {
        Finding {
            file: "x.rs".to_string(),
            line: 1,
            kind,
            function: "f".to_string(),
            table: table_bytes.map(|_| "T".to_string()),
            table_bytes,
            severity: Severity::Leak,
            provenance: vec!["secret `key`".to_string()],
            suppressed: suppressed.map(str::to_string),
            detail: "d".to_string(),
        }
    }

    #[test]
    fn small_table_is_line_safe_at_wide_lines_only() {
        let wide = Report::new(
            vec![finding(FindingKind::SecretIndex, Some(8), None)],
            vec!["x.rs".to_string()],
            8,
        );
        assert_eq!(wide.findings[0].severity, Severity::LineSafe);
        let byte = Report::new(
            vec![finding(FindingKind::SecretIndex, Some(8), None)],
            vec!["x.rs".to_string()],
            1,
        );
        assert_eq!(byte.findings[0].severity, Severity::Leak);
    }

    #[test]
    fn branches_leak_at_every_granularity() {
        let r = Report::new(
            vec![finding(FindingKind::SecretBranch, None, None)],
            vec!["x.rs".to_string()],
            64,
        );
        assert_eq!(r.findings[0].severity, Severity::Leak);
    }

    #[test]
    fn deny_levels() {
        let r = Report::new(
            vec![
                finding(FindingKind::SecretIndex, Some(8), None),
                finding(FindingKind::SecretIndex, Some(16), None),
                finding(FindingKind::SecretBranch, None, Some("reviewed")),
            ],
            vec!["x.rs".to_string()],
            8,
        );
        assert_eq!(r.denied(DenyLevel::None), 0);
        assert_eq!(r.denied(DenyLevel::Leak), 1); // 16-byte table only
        assert_eq!(r.denied(DenyLevel::LineSafe), 2); // + line-safe finding
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut f = finding(FindingKind::SecretIndex, Some(16), None);
        f.detail = "quote \" and\nnewline".to_string();
        let r = Report::new(vec![f], vec!["x.rs".to_string()], 8);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"grinch-ct-report/v2\""));
        assert!(json.contains("\"engine\": \"taint\""));
        assert!(json.contains("\\\" and\\nnewline"));
        assert_eq!(json, r.to_json(), "rendering must be deterministic");
    }

    #[test]
    fn determinism_reports_carry_hazard_severity_and_deny() {
        let mut f = finding(FindingKind::HashOrderEmission, None, None);
        f.detail = "HashMap iteration feeds JSON".to_string();
        let r = Report::determinism(vec![f], vec!["x.rs".to_string()], "crates/x".to_string());
        assert_eq!(r.findings[0].severity, Severity::Hazard);
        assert_eq!(r.denied(DenyLevel::Leak), 1, "hazards deny at leak level");
        let json = r.to_json();
        assert!(json.contains("\"engine\": \"determinism\""));
        assert!(json.contains("\"target\": \"crates/x\""));
        assert!(json.contains("\"hazard\": 1"));
    }

    #[test]
    fn empty_report_renders_clean_files() {
        let r = Report::new(Vec::new(), vec!["bitwise.rs".to_string()], 8);
        assert!(r.to_json().contains("\"findings\": []"));
        assert!(format!("{r}").contains("bitwise.rs: clean"));
    }
}
