//! `grinch-ct` — the workspace static analysis CLI: a secret-taint
//! constant-time engine and a determinism-hazard lint behind one binary.
//!
//! ```text
//! grinch-ct check [<path>] [--target DIR] [--line-bytes N]
//!                 [--deny-level leak|line-safe|none]
//!                 [--json] [--out FILE] [--sarif FILE]
//! grinch-ct determinism [<path>] [--target DIR]
//!                 [--allow SUFFIX[:KIND]]... [--deny-level leak|none]
//!                 [--json] [--out FILE] [--sarif FILE]
//! grinch-ct cross-validate <path> --trace <trace.jsonl>
//!                 [--defended-trace <trace.jsonl>]
//!                 [--impl-file FILE] [--line-bytes N]
//!                 [--mi-threshold BITS] [--json]
//! ```
//!
//! Exit codes: `0` clean / agreement, `1` deny-level violation or
//! static-vs-empirical disagreement, `2` usage or I/O error (including "no
//! .rs sources under <path>"). Argument parsing is hand-rolled — the build
//! environment is offline and the surface is three subcommands.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use grinch_ct::{analyze_dir_with, cross_check, determinism_dir, DenyLevel, TargetConfig};
use grinch_telemetry::Snapshot;

const USAGE: &str = "\
grinch-ct: workspace static analysis — secret-taint constant-time checking
and determinism-hazard linting for Rust sources

usage:
  grinch-ct check [<path>] [--target DIR] [--line-bytes N]
                  [--deny-level leak|line-safe|none]
                  [--json] [--out FILE] [--sarif FILE]
      analyse every .rs file under <path> (or DIR/src for --target) with
      the taint engine; exit 1 if any unsuppressed finding violates the
      deny level (default: leak). --target DIR also reads DIR/ct-config.toml
      for secret roots, cache-line size, and determinism allows; without a
      config the built-in secret names/types apply, plus any `// ct-secret`
      annotations in the sources. --line-bytes overrides the cache-line
      granularity for severity (default 8: a table that fits in one 8-byte
      line is `line-safe`). --json prints the stable grinch-ct-report/v2
      document; --out also writes it to FILE; --sarif writes a SARIF 2.1.0
      document for CI annotation upload.
  grinch-ct determinism [<path>] [--target DIR]
                  [--allow SUFFIX[:KIND]]... [--deny-level leak|none]
                  [--json] [--out FILE] [--sarif FILE]
      lint for hazards that break byte-identical reruns: HashMap/HashSet
      iteration reaching serialization, RNG seeded from OS entropy,
      wall-clock values stored into artifact structs, thread-identity
      aggregation. --allow suppresses findings whose file label ends with
      SUFFIX (optionally restricted to one finding KIND); `[determinism]
      allow` in ct-config.toml does the same. Exit 1 on unsuppressed
      hazards unless --deny-level none.
  grinch-ct cross-validate <path> --trace <trace.jsonl>
                  [--defended-trace <trace.jsonl>]
                  [--impl-file FILE] [--line-bytes N]
                  [--mi-threshold BITS] [--json]
      join the static verdict for --impl-file (default: table.rs) with
      the per-stage mutual-information estimate grinch-obs extracts from
      the trace's attack.stage<r>.joint.* counters; exit 1 on
      disagreement. Default threshold: 0.01 bits. --defended-trace adds a
      second trace captured on a defended platform (`grinch-arena trace`
      emits one) and reports the MI drop and whether the defense pushed
      the channel below the threshold; it never affects the exit code —
      the static verdict is a source property.

suppressions:
  a `// ct-allow: <reason>` comment on (or directly above) a line flagged
  by the taint engine suppresses the finding; `// det-allow: <reason>`
  does the same for the determinism lint. Suppressed findings stay in the
  report (and surface as SARIF suppressions).
";

fn fail(message: &str) -> ExitCode {
    eprintln!("grinch-ct: {message}");
    ExitCode::from(2)
}

/// Pulls the value following a `--flag` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn reject_leftover(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(unknown) => Err(format!("unexpected argument {unknown:?}")),
        None => Ok(()),
    }
}

fn line_bytes_arg(args: &mut Vec<String>) -> Result<Option<u64>, String> {
    match take_value(args, "--line-bytes")? {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|n| *n > 0)
            .map(Some)
            .ok_or_else(|| format!("--line-bytes: invalid value {v:?}")),
    }
}

/// What one `check`/`determinism` invocation analyses: a source directory,
/// the label stamped into the report's `target` field, and the per-target
/// config (defaults when no `ct-config.toml` exists).
struct Target {
    sources: PathBuf,
    label: String,
    config: TargetConfig,
}

/// Resolves `--target DIR` (crate directory: sources under `DIR/src` when
/// present, config from `DIR/ct-config.toml`) or a positional `<path>`
/// (sources as given, config from `<path>/ct-config.toml` if any).
fn resolve_target(args: &mut Vec<String>, cmd: &str) -> Result<Target, String> {
    if let Some(dir) = take_value(args, "--target")? {
        reject_leftover(args)?;
        let root = PathBuf::from(&dir);
        let config = TargetConfig::load(&root)?.unwrap_or_default();
        let src = root.join("src");
        let sources = if src.is_dir() { src } else { root };
        return Ok(Target {
            sources,
            label: dir,
            config,
        });
    }
    let path = args
        .pop()
        .ok_or_else(|| format!("{cmd}: missing <path> or --target DIR"))?;
    reject_leftover(args)?;
    let sources = PathBuf::from(&path);
    let config = TargetConfig::load(&sources)?.unwrap_or_default();
    Ok(Target {
        sources,
        label: path,
        config,
    })
}

/// Renders, writes, and gates one finished report; shared by both engines.
fn emit_report(
    report: &grinch_ct::Report,
    json: bool,
    out: Option<&str>,
    sarif: Option<&str>,
    deny: DenyLevel,
) -> Result<ExitCode, String> {
    let rendered = report.to_json();
    if let Some(out) = out {
        std::fs::write(out, &rendered).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    if let Some(sarif_path) = sarif {
        let doc = grinch_ct::sarif::to_sarif(report);
        std::fs::write(sarif_path, &doc).map_err(|e| format!("cannot write {sarif_path}: {e}"))?;
    }
    if json {
        print!("{rendered}");
    } else {
        print!("{report}");
    }
    let denied = report.denied(deny);
    if denied > 0 {
        eprintln!(
            "grinch-ct: {denied} finding(s) violate deny level ({} unsuppressed total)",
            report.active().count()
        );
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let line_bytes = line_bytes_arg(&mut args)?;
    let deny = match take_value(&mut args, "--deny-level")? {
        None => DenyLevel::Leak,
        Some(v) => {
            DenyLevel::parse(&v).ok_or_else(|| format!("--deny-level: unknown level {v:?}"))?
        }
    };
    let json = take_switch(&mut args, "--json");
    let out = take_value(&mut args, "--out")?;
    let sarif = take_value(&mut args, "--sarif")?;
    let target = resolve_target(&mut args, "check")?;

    let line_bytes = line_bytes.or(target.config.line_bytes).unwrap_or(8);
    let report = analyze_dir_with(&target.sources, &target.config.secrets, line_bytes)
        .map_err(|e| e.to_string())?
        .with_target(&target.label);
    emit_report(&report, json, out.as_deref(), sarif.as_deref(), deny)
}

fn cmd_determinism(mut args: Vec<String>) -> Result<ExitCode, String> {
    let deny = match take_value(&mut args, "--deny-level")? {
        None => DenyLevel::Leak,
        Some(v) => {
            DenyLevel::parse(&v).ok_or_else(|| format!("--deny-level: unknown level {v:?}"))?
        }
    };
    let json = take_switch(&mut args, "--json");
    let out = take_value(&mut args, "--out")?;
    let sarif = take_value(&mut args, "--sarif")?;
    let mut allow = Vec::new();
    while let Some(entry) = take_value(&mut args, "--allow")? {
        allow.push(entry);
    }
    let target = resolve_target(&mut args, "determinism")?;
    allow.extend(target.config.det_allow.iter().cloned());

    let report =
        determinism_dir(&target.sources, &target.label, &allow).map_err(|e| e.to_string())?;
    emit_report(&report, json, out.as_deref(), sarif.as_deref(), deny)
}

fn cmd_cross_validate(mut args: Vec<String>) -> Result<ExitCode, String> {
    let line_bytes = line_bytes_arg(&mut args)?.unwrap_or(8);
    let trace = take_value(&mut args, "--trace")?.ok_or("cross-validate: missing --trace")?;
    let defended_trace = take_value(&mut args, "--defended-trace")?;
    let impl_file = take_value(&mut args, "--impl-file")?.unwrap_or_else(|| "table.rs".to_string());
    let threshold = match take_value(&mut args, "--mi-threshold")? {
        None => 0.01,
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("--mi-threshold: invalid value {v:?}"))?,
    };
    let json = take_switch(&mut args, "--json");
    let path = args.pop().ok_or("cross-validate: missing <path>")?;
    reject_leftover(&args)?;

    let report = analyze_dir_with(
        Path::new(&path),
        &grinch_ct::SecretConfig::default(),
        line_bytes,
    )
    .map_err(|e| e.to_string())?;
    if !report.files.iter().any(|f| f == &impl_file) {
        return Err(format!(
            "cross-validate: {impl_file:?} not among analysed files {:?}",
            report.files
        ));
    }
    let snapshot =
        Snapshot::from_jsonl_file(&trace).map_err(|e| format!("cannot read trace: {e}"))?;
    let mut check = cross_check(&report, &impl_file, &snapshot, threshold);
    if let Some(defended) = &defended_trace {
        let defended_snapshot = Snapshot::from_jsonl_file(defended)
            .map_err(|e| format!("cannot read defended trace: {e}"))?;
        check = check.with_defended_trace(&defended_snapshot);
    }
    if json {
        print!("{}", check.to_json());
    } else {
        println!("{}", check.verdict());
    }
    if check.agrees() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        print!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "check" => cmd_check(args),
        "determinism" => cmd_determinism(args),
        "cross-validate" => cmd_cross_validate(args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => fail(&message),
    }
}
