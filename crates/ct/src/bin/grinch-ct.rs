//! `grinch-ct` — the static constant-time analyzer CLI.
//!
//! ```text
//! grinch-ct check <path> [--line-bytes N] [--deny-level leak|line-safe|none]
//!                        [--json] [--out FILE]
//! grinch-ct cross-validate <path> --trace <trace.jsonl>
//!                        [--defended-trace <trace.jsonl>]
//!                        [--impl-file FILE] [--line-bytes N]
//!                        [--mi-threshold BITS] [--json]
//! ```
//!
//! Exit codes: `0` clean / agreement, `1` deny-level violation or
//! static-vs-empirical disagreement, `2` usage or I/O error. Argument
//! parsing is hand-rolled — the build environment is offline and the
//! surface is two subcommands.

use std::path::Path;
use std::process::ExitCode;

use grinch_ct::{analyze_dir, cross_check, DenyLevel};
use grinch_telemetry::Snapshot;

const USAGE: &str = "\
grinch-ct: static secret-taint constant-time analysis for GIFT sources

usage:
  grinch-ct check <path> [--line-bytes N] [--deny-level leak|line-safe|none]
                         [--json] [--out FILE]
      analyse every .rs file under <path>; exit 1 if any unsuppressed
      finding violates the deny level (default: leak). --line-bytes sets
      the cache-line granularity for severity (default 8: a table that
      fits in one 8-byte line is `line-safe`). --json prints the stable
      grinch-ct-report/v1 document; --out also writes it to FILE.
  grinch-ct cross-validate <path> --trace <trace.jsonl>
                         [--defended-trace <trace.jsonl>]
                         [--impl-file FILE] [--line-bytes N]
                         [--mi-threshold BITS] [--json]
      join the static verdict for --impl-file (default: table.rs) with
      the per-stage mutual-information estimate grinch-obs extracts from
      the trace's attack.stage<r>.joint.* counters; exit 1 on
      disagreement. Default threshold: 0.01 bits. --defended-trace adds a
      second trace captured on a defended platform (`grinch-arena trace`
      emits one) and reports the MI drop and whether the defense pushed
      the channel below the threshold; it never affects the exit code —
      the static verdict is a source property.

suppressions:
  a `// ct-allow: <reason>` comment on (or directly above) a flagged line
  suppresses the finding; suppressed findings stay in the report.
";

fn fail(message: &str) -> ExitCode {
    eprintln!("grinch-ct: {message}");
    ExitCode::from(2)
}

/// Pulls the value following a `--flag` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn reject_leftover(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(unknown) => Err(format!("unexpected argument {unknown:?}")),
        None => Ok(()),
    }
}

fn line_bytes_arg(args: &mut Vec<String>) -> Result<u64, String> {
    match take_value(args, "--line-bytes")? {
        None => Ok(8),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--line-bytes: invalid value {v:?}")),
    }
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let line_bytes = line_bytes_arg(&mut args)?;
    let deny = match take_value(&mut args, "--deny-level")? {
        None => DenyLevel::Leak,
        Some(v) => {
            DenyLevel::parse(&v).ok_or_else(|| format!("--deny-level: unknown level {v:?}"))?
        }
    };
    let json = take_switch(&mut args, "--json");
    let out = take_value(&mut args, "--out")?;
    let path = args.pop().ok_or("check: missing <path>")?;
    reject_leftover(&args)?;

    let report = analyze_dir(Path::new(&path), line_bytes).map_err(|e| e.to_string())?;
    let rendered = report.to_json();
    if let Some(out) = &out {
        std::fs::write(out, &rendered).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    if json {
        print!("{rendered}");
    } else {
        print!("{report}");
    }
    let denied = report.denied(deny);
    if denied > 0 {
        eprintln!(
            "grinch-ct: {denied} finding(s) violate deny level ({} unsuppressed total)",
            report.active().count()
        );
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_cross_validate(mut args: Vec<String>) -> Result<ExitCode, String> {
    let line_bytes = line_bytes_arg(&mut args)?;
    let trace = take_value(&mut args, "--trace")?.ok_or("cross-validate: missing --trace")?;
    let defended_trace = take_value(&mut args, "--defended-trace")?;
    let impl_file = take_value(&mut args, "--impl-file")?.unwrap_or_else(|| "table.rs".to_string());
    let threshold = match take_value(&mut args, "--mi-threshold")? {
        None => 0.01,
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("--mi-threshold: invalid value {v:?}"))?,
    };
    let json = take_switch(&mut args, "--json");
    let path = args.pop().ok_or("cross-validate: missing <path>")?;
    reject_leftover(&args)?;

    let report = analyze_dir(Path::new(&path), line_bytes).map_err(|e| e.to_string())?;
    if !report.files.iter().any(|f| f == &impl_file) {
        return Err(format!(
            "cross-validate: {impl_file:?} not among analysed files {:?}",
            report.files
        ));
    }
    let snapshot =
        Snapshot::from_jsonl_file(&trace).map_err(|e| format!("cannot read trace: {e}"))?;
    let mut check = cross_check(&report, &impl_file, &snapshot, threshold);
    if let Some(defended) = &defended_trace {
        let defended_snapshot = Snapshot::from_jsonl_file(defended)
            .map_err(|e| format!("cannot read defended trace: {e}"))?;
        check = check.with_defended_trace(&defended_snapshot);
    }
    if json {
        print!("{}", check.to_json());
    } else {
        println!("{}", check.verdict());
    }
    if check.agrees() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        print!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "check" => cmd_check(args),
        "cross-validate" => cmd_cross_validate(args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => fail(&message),
    }
}
