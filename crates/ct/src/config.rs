//! Per-target analysis configuration (`ct-config.toml`).
//!
//! The taint engine is target-agnostic: nothing about GIFT is baked into
//! the analyzer. What counts as a secret comes from a `ct-config.toml` next
//! to the target directory (or from `// ct-secret` annotations in the
//! sources). The file is a small TOML subset parsed by hand — string
//! arrays, integers, and `[section]` headers — so the crate stays
//! dependency-free:
//!
//! ```toml
//! [secrets]
//! types = ["Key", "RoundKey64"]     # type names that are secret outright
//! names = ["state", "round_keys"]   # binding/field names that are secret
//!
//! [analysis]
//! line-bytes = 8                    # cache-line size for severity
//!
//! [determinism]
//! allow = ["live.rs:wall-clock-artifact", "progress.rs"]
//! ```
//!
//! A `[determinism] allow` entry is a file-label suffix, optionally
//! `:kind`-qualified; matching findings are reported as suppressed with the
//! config as the stated reason.

use crate::taint::SecretConfig;
use std::path::Path;

/// Parsed `ct-config.toml` for one analysis target.
#[derive(Clone, Debug, Default)]
pub struct TargetConfig {
    /// Secret roots for the taint engine.
    pub secrets: SecretConfig,
    /// Cache-line size override, if given.
    pub line_bytes: Option<u64>,
    /// Determinism allowlist entries (`file-suffix` or `file-suffix:kind`).
    pub det_allow: Vec<String>,
}

impl TargetConfig {
    /// Loads `<dir>/ct-config.toml` if present; `Ok(None)` when the target
    /// has no config file.
    pub fn load(dir: &Path) -> Result<Option<TargetConfig>, String> {
        let path = dir.join("ct-config.toml");
        if !path.is_file() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        TargetConfig::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML-subset text.
    pub fn parse(text: &str) -> Result<TargetConfig, String> {
        let mut out = TargetConfig::default();
        let mut secrets_given = false;
        let mut types = Vec::new();
        let mut names = Vec::new();
        let mut section = String::new();
        let mut pending = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if pending.is_empty() && line.starts_with('[') && line.ends_with(']') {
                section = line[1..line.len() - 1].trim().to_string();
                continue;
            }
            // Accumulate multi-line arrays until brackets balance.
            if !pending.is_empty() {
                pending.push(' ');
            }
            pending.push_str(&line);
            if pending.matches('[').count() > pending.matches(']').count() {
                continue;
            }
            let stmt = std::mem::take(&mut pending);
            let (key, value) = stmt
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("secrets", "types") => {
                    types = parse_string_array(value)
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    secrets_given = true;
                }
                ("secrets", "names") => {
                    names = parse_string_array(value)
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    secrets_given = true;
                }
                ("analysis", "line-bytes") => {
                    out.line_bytes = Some(value.parse::<u64>().map_err(|_| {
                        format!("line {}: `line-bytes` wants an integer", lineno + 1)
                    })?);
                }
                ("determinism", "allow") => {
                    out.det_allow = parse_string_array(value)
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                }
                _ => {
                    return Err(format!(
                        "line {}: unknown key `{key}` in section `[{section}]`",
                        lineno + 1
                    ));
                }
            }
        }
        if !pending.is_empty() {
            return Err("unterminated array".to_string());
        }
        if secrets_given {
            out.secrets = SecretConfig {
                secret_types: types.into_iter().collect(),
                secret_names: names.into_iter().collect(),
            };
        }
        Ok(out)
    }
}

/// Drops a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` into its strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| "expected a `[...]` array".to_string())?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_parses() {
        let cfg = TargetConfig::parse(
            "# rectangle cipher\n\
             [secrets]\n\
             types = [\"RectKey\"]   # key schedule\n\
             names = [\"subkeys\", \"key\"]\n\
             \n\
             [analysis]\n\
             line-bytes = 16\n\
             \n\
             [determinism]\n\
             allow = [\n\
               \"live.rs:wall-clock-artifact\",\n\
               \"progress.rs\",\n\
             ]\n",
        )
        .expect("parses");
        assert!(cfg.secrets.secret_types.contains("RectKey"));
        assert!(cfg.secrets.secret_names.contains("subkeys"));
        assert!(
            !cfg.secrets.secret_names.contains("state"),
            "defaults replaced"
        );
        assert_eq!(cfg.line_bytes, Some(16));
        assert_eq!(cfg.det_allow.len(), 2);
    }

    #[test]
    fn missing_secrets_section_keeps_defaults() {
        let cfg = TargetConfig::parse("[analysis]\nline-bytes = 8\n").expect("parses");
        assert!(cfg.secrets.secret_names.contains("key"));
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(TargetConfig::parse("[secrets]\nfoo = [\"x\"]\n").is_err());
        assert!(TargetConfig::parse("types = [\"x\"]\n").is_err());
    }

    #[test]
    fn load_returns_none_without_a_file() {
        let dir = std::env::temp_dir().join("grinch-ct-no-config-here");
        let _ = std::fs::create_dir_all(&dir);
        assert!(TargetConfig::load(&dir).expect("ok").is_none());
    }
}
