//! A lightweight Rust AST and recursive-descent parser.
//!
//! This is **not** a general Rust front end: it parses the subset of the
//! language the workspace's cipher crates use (items, impl blocks, the
//! ordinary statement/expression grammar, patterns, closures, macros) with
//! enough fidelity for a source-level taint dataflow. Constructs the
//! analyzer does not model (generics bounds, where-clauses, trait bodies
//! without defaults) are skipped over, never guessed at. Parse errors are
//! reported with line numbers so an unsupported construct fails loudly
//! rather than silently dropping code from the analysis.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with its source line.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed source file (one analysis module).
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    /// Free functions and methods, in source order. Methods carry the impl
    /// type in [`Func::qual`].
    pub functions: Vec<Func>,
    /// `const` / `static` definitions (used for the table-size registry).
    pub consts: Vec<ConstDef>,
    /// Struct and enum definitions with their field type texts.
    pub structs: Vec<StructDef>,
    /// `line -> reason` suppression comments from the lexer.
    pub allows: BTreeMap<u32, String>,
    /// `line -> reason` determinism-suppression comments from the lexer.
    pub det_allows: BTreeMap<u32, String>,
    /// Lines carrying a `// ct-secret` annotation.
    pub secret_marks: BTreeMap<u32, String>,
}

/// One function or method.
#[derive(Clone, Debug)]
pub struct Func {
    /// Bare name (`encrypt_with`).
    pub name: String,
    /// Impl type for methods (`TableGift64`), `None` for free functions.
    pub qual: Option<String>,
    /// Parameters in order; a `self` receiver is params[0] with
    /// `is_self == true`.
    pub params: Vec<Param>,
    /// Return type text, if any.
    pub ret_ty: Option<String>,
    /// The body.
    pub body: Block,
    /// Line of the `fn` keyword.
    pub line: u32,
}

impl Func {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qualified_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`None` for `_` or destructured patterns).
    pub name: Option<String>,
    /// Type text (`&mut dyn MemoryObserver`); for `self` receivers this is
    /// the impl type.
    pub ty: String,
    /// Whether this is a `self` receiver.
    pub is_self: bool,
}

/// A `const` or `static` item.
#[derive(Clone, Debug)]
pub struct ConstDef {
    /// Item name.
    pub name: String,
    /// Element type for array types (`u8` in `[u8; 16]`).
    pub elem_ty: Option<String>,
    /// Array length: resolved integer, or a named const to resolve later.
    pub len: Option<ConstLen>,
    /// Scalar integer value when the initializer is a literal (used to
    /// resolve named lengths such as `MAX_ROUNDS`).
    pub value: Option<u128>,
    /// Definition line.
    pub line: u32,
}

/// An array length that may reference a named const.
#[derive(Clone, Debug)]
pub enum ConstLen {
    /// Literal length.
    Lit(u128),
    /// Named const (resolved against the crate-wide scalar-const map).
    Named(String),
}

/// A struct or enum definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// `(field name, field type text)`; enum variant payloads appear as
    /// fields named after the variant.
    pub fields: Vec<(String, String)>,
}

/// A block `{ ... }` of statements; a trailing expression without `;` is
/// the block's value.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Trailing value expression, if present.
    pub tail: Option<Box<Expr>>,
}

/// One statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let pat: ty = init;`
    Let {
        /// Binding pattern.
        pat: Pat,
        /// Type ascription text.
        ty: Option<String>,
        /// Initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// An expression statement (`expr;` or a block-like expr).
    Expr(Expr),
    /// A nested item the analyzer ignores (nested `fn`, `use`, …).
    Item,
}

/// One expression. Lines are carried where findings may anchor.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Literal (number, string, char, bool is an ident-path).
    Lit,
    /// Path: `x`, `a::b::C`, `self`.
    Path(Vec<String>, u32),
    /// Unary `!`/`-`/`*`/`&`/`&mut`.
    Unary(Box<Expr>),
    /// Binary operation.
    Binary(&'static str, Box<Expr>, Box<Expr>, u32),
    /// Assignment or compound assignment.
    Assign(&'static str, Box<Expr>, Box<Expr>, u32),
    /// `expr as Type` (type dropped; casts preserve taint).
    Cast(Box<Expr>),
    /// `expr.field`.
    Field(Box<Expr>, String, u32),
    /// `expr.0`.
    TupleField(Box<Expr>, u32),
    /// `expr[index]`.
    Index(Box<Expr>, Box<Expr>, u32),
    /// `callee(args)`.
    Call(Box<Expr>, Vec<Expr>, u32),
    /// `recv.method::<T>(args)` — turbofish type idents are kept so type
    /// ascriptions through `collect::<BTreeMap<_, _>>()` stay visible.
    MethodCall(Box<Expr>, String, Vec<String>, Vec<Expr>, u32),
    /// `name!(args)` — args parsed best-effort as expressions.
    Macro(String, Vec<Expr>, u32),
    /// `(a, b, …)`; 1-tuples are plain parens.
    Tuple(Vec<Expr>),
    /// `[a, b]` or `[elem; n]`.
    Array(Vec<Expr>),
    /// `Path { field: expr, … }`.
    StructLit(Vec<String>, Vec<(String, Expr)>, u32),
    /// `a..b`, `..b`, `a..`.
    Range(Option<Box<Expr>>, Option<Box<Expr>>, u32),
    /// `if cond { .. } else ..` (cond is a pattern-match for `if let`).
    If {
        /// Condition (for `if let`, the matched expression).
        cond: Box<Expr>,
        /// Pattern for `if let`.
        pat: Option<Pat>,
        /// Then-block.
        then_block: Block,
        /// `else` expression (a Block or another If).
        else_expr: Option<Box<Expr>>,
        /// Line of the `if`.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// `(pattern, guard, body)` per arm.
        arms: Vec<(Pat, Option<Expr>, Expr)>,
        /// Line of the `match`.
        line: u32,
    },
    /// Plain block expression.
    Block(Block),
    /// `for pat in iter { body }`.
    For {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// Line of the `for`.
        line: u32,
    },
    /// `while cond { body }` (cond is the matched expr for `while let`).
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Pattern for `while let`.
        pat: Option<Pat>,
        /// Body.
        body: Block,
        /// Line of the `while`.
        line: u32,
    },
    /// `loop { body }`.
    Loop(Block),
    /// `|params| body` (optionally `move`).
    Closure {
        /// Parameter patterns.
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `return expr?`.
    Return(Option<Box<Expr>>, u32),
    /// `break expr?` / `continue`.
    Jump(Option<Box<Expr>>, u32),
    /// `expr?`.
    Try(Box<Expr>),
}

impl Expr {
    /// The line this expression anchors to, when known.
    pub fn line(&self) -> Option<u32> {
        match self {
            Expr::Path(_, l)
            | Expr::Binary(_, _, _, l)
            | Expr::Assign(_, _, _, l)
            | Expr::Field(_, _, l)
            | Expr::TupleField(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::MethodCall(_, _, _, _, l)
            | Expr::Macro(_, _, l)
            | Expr::StructLit(_, _, l)
            | Expr::Range(_, _, l)
            | Expr::If { line: l, .. }
            | Expr::Match { line: l, .. }
            | Expr::For { line: l, .. }
            | Expr::While { line: l, .. }
            | Expr::Return(_, l)
            | Expr::Jump(_, l) => Some(*l),
            Expr::Unary(e) | Expr::Cast(e) | Expr::Try(e) => e.line(),
            _ => None,
        }
    }
}

/// One pattern.
#[derive(Clone, Debug)]
pub enum Pat {
    /// `_`, literals, `..`, and anything else that binds nothing.
    Wild,
    /// A binding identifier (`x`, `mut x`, `ref x`).
    Ident(String, u32),
    /// `(p, q)`.
    Tuple(Vec<Pat>),
    /// `Path(p, q)` tuple-struct / enum-variant pattern.
    TupleStruct(Vec<String>, Vec<Pat>),
    /// `Path { field: pat, … }`.
    Struct(Vec<String>, Vec<(String, Pat)>),
    /// `&p` / `&mut p`.
    Ref(Box<Pat>),
    /// `[p, q]`.
    Slice(Vec<Pat>),
    /// `p | q`.
    Or(Vec<Pat>),
}

impl Pat {
    /// Collects every identifier the pattern binds.
    pub fn bindings(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        self.collect_bindings(&mut out);
        out
    }

    fn collect_bindings(&self, out: &mut Vec<(String, u32)>) {
        match self {
            Pat::Wild => {}
            Pat::Ident(name, line) => out.push((name.clone(), *line)),
            Pat::Tuple(ps) | Pat::Slice(ps) | Pat::Or(ps) => {
                for p in ps {
                    p.collect_bindings(out);
                }
            }
            Pat::TupleStruct(_, ps) => {
                for p in ps {
                    p.collect_bindings(out);
                }
            }
            Pat::Struct(_, fields) => {
                for (_, p) in fields {
                    p.collect_bindings(out);
                }
            }
            Pat::Ref(p) => p.collect_bindings(out),
        }
    }
}

/// Parses one source file.
pub fn parse_file(src: &str) -> Result<SourceFile, ParseError> {
    let lexed: Lexed = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut parser = Parser {
        tokens: lexed.tokens,
        pos: 0,
    };
    let mut file = SourceFile {
        allows: lexed.allows,
        det_allows: lexed.det_allows,
        secret_marks: lexed.secret_marks,
        ..SourceFile::default()
    };
    parser.parse_items(&mut file, None)?;
    Ok(file)
}

const KEYWORD_NON_BINDING: &[&str] = &["true", "false"];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    // ---- token cursor -------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, ahead: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + ahead).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{p}`")))
        }
    }

    fn at_open(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenKind::Open(o)) if *o == c)
    }

    fn at_close(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenKind::Close(o)) if *o == c)
    }

    fn eat_open(&mut self, c: char) -> bool {
        if self.at_open(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_close(&mut self, c: char) -> bool {
        if self.at_close(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_open(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_open(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    fn expect_close(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_close(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected closing `{c}`")))
        }
    }

    fn error(&self, message: &str) -> ParseError {
        let found = self
            .peek()
            .map_or_else(|| "end of input".to_string(), |t| t.to_string());
        ParseError {
            message: format!("{message}, found {found}"),
            line: self.line(),
        }
    }

    /// Skips a balanced delimiter group whose opener is the current token.
    fn skip_group(&mut self) -> Result<(), ParseError> {
        let Some(TokenKind::Open(_)) = self.peek() else {
            return Err(self.error("expected a delimiter group"));
        };
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some(TokenKind::Open(_)) => depth += 1,
                Some(TokenKind::Close(_)) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.error("unbalanced delimiters")),
            }
        }
    }

    /// Skips `<...>` generics, treating `>>` as two closers.
    fn skip_generics(&mut self) -> Result<(), ParseError> {
        if !self.at_punct("<") {
            return Ok(());
        }
        let mut depth = 0i32;
        loop {
            if self.at_punct("<") {
                depth += 1;
                self.pos += 1;
            } else if self.at_punct(">") {
                depth -= 1;
                self.pos += 1;
            } else if self.at_punct(">>") {
                depth -= 2;
                self.pos += 1;
            } else if self.at_punct("<<") {
                depth += 2;
                self.pos += 1;
            } else if matches!(self.peek(), Some(TokenKind::Open(_))) {
                self.skip_group()?;
            } else if self.bump().is_none() {
                return Err(self.error("unbalanced generics"));
            }
            if depth <= 0 {
                return Ok(());
            }
        }
    }

    // ---- types --------------------------------------------------------

    /// Consumes a type and returns its token text (space-joined idents and
    /// punctuation). Stops at a depth-0 `,` `;` `=` `{` `)` `>` or `where`.
    fn parse_type_text(&mut self) -> Result<String, ParseError> {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0i32;
        loop {
            if angle == 0 {
                let stop = match self.peek() {
                    None => true,
                    Some(k) => {
                        k.is_punct(",")
                            || k.is_punct(";")
                            || k.is_punct("=")
                            || k.is_punct("=>")
                            || k.is_punct("|")
                            || k.is_kw("where")
                            || k.is_kw("for")
                            || k.is_kw("in")
                            || matches!(k, TokenKind::Open('{'))
                            || matches!(k, TokenKind::Close(_))
                    }
                };
                if stop {
                    break;
                }
            }
            match self.peek() {
                Some(TokenKind::Punct("<")) => {
                    angle += 1;
                    parts.push("<".into());
                    self.pos += 1;
                }
                Some(TokenKind::Punct(">")) => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                    parts.push(">".into());
                    self.pos += 1;
                }
                Some(TokenKind::Punct(">>")) => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 2;
                    parts.push(">>".into());
                    self.pos += 1;
                }
                Some(TokenKind::Open(c)) => {
                    // Tuple, slice or fn-pointer types: capture idents inside.
                    let c = *c;
                    let mut inner = Vec::new();
                    let mut depth = 0usize;
                    loop {
                        match self.bump() {
                            Some(TokenKind::Open(_)) => depth += 1,
                            Some(TokenKind::Close(_)) => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Some(TokenKind::Ident(s)) => inner.push(s),
                            Some(TokenKind::Int(Some(v))) => inner.push(v.to_string()),
                            Some(_) => {}
                            None => return Err(self.error("unbalanced type")),
                        }
                    }
                    parts.push(format!("{c}{}{}", inner.join(" "), matching(c)));
                }
                Some(TokenKind::Ident(s)) => {
                    parts.push(s.clone());
                    self.pos += 1;
                }
                Some(TokenKind::Lifetime(_)) => {
                    self.pos += 1;
                }
                Some(TokenKind::Int(Some(v))) => {
                    parts.push(v.to_string());
                    self.pos += 1;
                }
                Some(_) => {
                    if let Some(TokenKind::Punct(p)) = self.bump() {
                        parts.push(p.to_string());
                    }
                }
                None => break,
            }
        }
        Ok(parts.join(" "))
    }

    // ---- items --------------------------------------------------------

    fn parse_items(&mut self, file: &mut SourceFile, qual: Option<&str>) -> Result<(), ParseError> {
        let mut skip_next = false;
        loop {
            // End of container.
            if self.peek().is_none() || self.at_close('}') {
                return Ok(());
            }
            // Attributes.
            if self.at_punct("#") {
                let attr_is_test = self.attr_is_cfg_test()?;
                skip_next = skip_next || attr_is_test;
                continue;
            }
            // Visibility.
            if self.eat_kw("pub") {
                if self.at_open('(') {
                    self.skip_group()?;
                }
                continue;
            }
            if skip_next {
                self.skip_item()?;
                skip_next = false;
                continue;
            }
            if self.at_kw("fn")
                || (self.at_kw("const") && self.peek_at(1).is_some_and(|t| t.is_kw("fn")))
                || (self.at_kw("unsafe") && self.peek_at(1).is_some_and(|t| t.is_kw("fn")))
            {
                self.eat_kw("const");
                self.eat_kw("unsafe");
                let func = self.parse_fn(qual)?;
                if let Some(f) = func {
                    file.functions.push(f);
                }
                continue;
            }
            if self.at_kw("const") || self.at_kw("static") {
                self.parse_const(file)?;
                continue;
            }
            if self.at_kw("use") || self.at_kw("extern") {
                self.skip_to_semi()?;
                continue;
            }
            if self.at_kw("mod") {
                self.bump();
                self.bump(); // name
                if self.at_punct(";") {
                    self.bump();
                } else {
                    self.expect_open('{')?;
                    self.parse_items(file, qual)?;
                    self.expect_close('}')?;
                }
                continue;
            }
            if self.at_kw("struct") || self.at_kw("enum") || self.at_kw("union") {
                self.parse_struct_or_enum(file)?;
                continue;
            }
            if self.at_kw("impl")
                || (self.at_kw("unsafe") && self.peek_at(1).is_some_and(|t| t.is_kw("impl")))
            {
                self.eat_kw("unsafe");
                self.bump();
                self.skip_generics()?;
                let first = self.parse_type_text()?;
                let ty = if self.eat_kw("for") {
                    self.parse_type_text()?
                } else {
                    first
                };
                let name = last_type_ident(&ty);
                self.expect_open('{')?;
                self.parse_items(file, Some(&name))?;
                self.expect_close('}')?;
                continue;
            }
            if self.at_kw("trait") {
                self.bump();
                self.bump(); // name
                self.skip_generics()?;
                // Supertraits / where clause up to the body.
                while !self.at_open('{') && self.peek().is_some() {
                    self.bump();
                }
                // Trait bodies: default methods would be analyzable, but no
                // crate in this workspace relies on them for cipher logic.
                self.skip_group()?;
                continue;
            }
            if self.at_kw("type") {
                self.skip_to_semi()?;
                continue;
            }
            if self.at_kw("macro_rules") {
                self.bump();
                self.expect_punct("!")?;
                self.bump(); // name
                self.skip_group()?;
                continue;
            }
            // Item-level macro invocations: `thread_local! { ... }`,
            // `impl_standard_int!(u8, u16);` — opaque to the analysis.
            if matches!(self.peek(), Some(TokenKind::Ident(_))) {
                let save = self.pos;
                let mut is_macro = false;
                while matches!(self.peek(), Some(TokenKind::Ident(_))) {
                    self.bump();
                    if self.eat_punct("!") {
                        is_macro = true;
                        break;
                    }
                    if !self.eat_punct("::") {
                        break;
                    }
                }
                if is_macro && matches!(self.peek(), Some(TokenKind::Open(_))) {
                    self.skip_group()?;
                    self.eat_punct(";");
                    continue;
                }
                self.pos = save;
            }
            return Err(self.error("unsupported item"));
        }
    }

    /// Consumes `#[...]`, returning whether it contains `cfg(test)`.
    fn attr_is_cfg_test(&mut self) -> Result<bool, ParseError> {
        self.expect_punct("#")?;
        self.eat_punct("!");
        let start = self.pos;
        self.skip_group()?;
        let mut saw_cfg = false;
        let mut saw_test = false;
        for t in &self.tokens[start..self.pos] {
            match &t.kind {
                TokenKind::Ident(s) if s == "cfg" => saw_cfg = true,
                TokenKind::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
        }
        Ok(saw_cfg && saw_test)
    }

    /// Skips one item after a `#[cfg(test)]` attribute.
    fn skip_item(&mut self) -> Result<(), ParseError> {
        // Consume leading keywords until the item's body or terminator.
        loop {
            if self.at_open('{') {
                return self.skip_group();
            }
            if self.at_punct(";") {
                self.bump();
                return Ok(());
            }
            if matches!(self.peek(), Some(TokenKind::Open(_))) {
                self.skip_group()?;
                continue;
            }
            if self.bump().is_none() {
                return Ok(());
            }
        }
    }

    fn skip_to_semi(&mut self) -> Result<(), ParseError> {
        loop {
            if self.at_punct(";") {
                self.bump();
                return Ok(());
            }
            if matches!(self.peek(), Some(TokenKind::Open(_))) {
                self.skip_group()?;
                continue;
            }
            if self.bump().is_none() {
                return Ok(());
            }
        }
    }

    fn parse_const(&mut self, file: &mut SourceFile) -> Result<(), ParseError> {
        let line = self.line();
        self.bump(); // const/static
        self.eat_kw("mut");
        let Some(TokenKind::Ident(name)) = self.bump() else {
            return Err(self.error("expected const name"));
        };
        self.expect_punct(":")?;
        // Array type `[elem; len]`?
        let (elem_ty, len) = if self.at_open('[') {
            self.bump();
            // Element type up to the depth-0 `;` — `u8`, `& str`, `( u8 ,
            // u8 )`; nested groups contribute their idents.
            let mut elem_idents: Vec<String> = Vec::new();
            loop {
                match self.peek() {
                    Some(TokenKind::Punct(";")) => break,
                    Some(TokenKind::Open(_)) => {
                        let start = self.pos;
                        self.skip_group()?;
                        for t in &self.tokens[start..self.pos] {
                            if let Some(s) = t.kind.ident() {
                                elem_idents.push(s.to_string());
                            }
                        }
                    }
                    Some(TokenKind::Ident(s)) => {
                        elem_idents.push(s.clone());
                        self.pos += 1;
                    }
                    Some(_) => {
                        self.bump();
                    }
                    None => return Err(self.error("unterminated array type")),
                }
            }
            let elem = elem_idents.last().cloned();
            self.expect_punct(";")?;
            let len = match self.bump() {
                Some(TokenKind::Int(Some(v))) => Some(ConstLen::Lit(v)),
                Some(TokenKind::Ident(n)) => Some(ConstLen::Named(n)),
                _ => None,
            };
            // Anything else up to the closing bracket (e.g. `+ 1`).
            let mut extra = false;
            while !self.at_close(']') {
                if self.bump().is_none() {
                    return Err(self.error("unterminated array type"));
                }
                extra = true;
            }
            self.bump();
            // A computed length (`PRESENT_ROUNDS + 1`) is left unresolved.
            (elem, if extra { None } else { len })
        } else {
            let _ = self.parse_type_text()?;
            (None, None)
        };
        // Initializer: capture a scalar literal value if trivially present.
        let mut value = None;
        if self.eat_punct("=") {
            if let Some(TokenKind::Int(v)) = self.peek() {
                if self.peek_at(1).is_some_and(|t| t.is_punct(";")) {
                    value = *v;
                }
            }
            self.skip_to_semi()?;
        } else {
            self.expect_punct(";")?;
        }
        file.consts.push(ConstDef {
            name,
            elem_ty,
            len,
            value,
            line,
        });
        Ok(())
    }

    fn parse_struct_or_enum(&mut self, file: &mut SourceFile) -> Result<(), ParseError> {
        let is_enum = self.at_kw("enum");
        self.bump();
        let Some(TokenKind::Ident(name)) = self.bump() else {
            return Err(self.error("expected type name"));
        };
        self.skip_generics()?;
        let mut fields = Vec::new();
        if self.at_punct(";") {
            self.bump(); // unit struct
        } else if self.at_open('(') {
            // Tuple struct: fields are positional; record types as `0`, `1`…
            self.bump();
            let mut idx = 0usize;
            while !self.at_close(')') {
                // Skip visibility.
                if self.eat_kw("pub") && self.at_open('(') {
                    self.skip_group()?;
                }
                let ty = self.parse_type_text()?;
                fields.push((idx.to_string(), ty));
                idx += 1;
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_close(')')?;
            self.eat_punct(";");
        } else {
            self.expect_open('{')?;
            while !self.at_close('}') {
                if self.at_punct("#") {
                    self.attr_is_cfg_test()?;
                    continue;
                }
                if self.eat_kw("pub") {
                    if self.at_open('(') {
                        self.skip_group()?;
                    }
                    continue;
                }
                let Some(TokenKind::Ident(fname)) = self.bump() else {
                    return Err(self.error("expected field or variant name"));
                };
                if is_enum {
                    // Variant payloads become pseudo-fields.
                    if self.at_open('(') {
                        self.bump();
                        let mut inner = Vec::new();
                        while !self.at_close(')') {
                            inner.push(self.parse_type_text()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_close(')')?;
                        fields.push((fname, inner.join(" ")));
                    } else if self.at_open('{') {
                        let start = self.pos;
                        self.skip_group()?;
                        let text: Vec<String> = self.tokens[start..self.pos]
                            .iter()
                            .filter_map(|t| t.kind.ident().map(str::to_string))
                            .collect();
                        fields.push((fname, text.join(" ")));
                    } else {
                        fields.push((fname, String::new()));
                        if self.eat_punct("=") {
                            // Discriminant.
                            while !self.at_punct(",") && !self.at_close('}') {
                                self.bump();
                            }
                        }
                    }
                } else {
                    self.expect_punct(":")?;
                    let ty = self.parse_type_text()?;
                    fields.push((fname, ty));
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_close('}')?;
        }
        file.structs.push(StructDef { name, fields });
        Ok(())
    }

    /// Parses `fn name(...) -> ret { body }`. Returns `None` for bodyless
    /// trait-style signatures (`fn f(...);`).
    fn parse_fn(&mut self, qual: Option<&str>) -> Result<Option<Func>, ParseError> {
        let line = self.line();
        self.eat_kw("fn");
        let Some(TokenKind::Ident(name)) = self.bump() else {
            return Err(self.error("expected function name"));
        };
        self.skip_generics()?;
        self.expect_open('(')?;
        let mut params = Vec::new();
        while !self.at_close(')') {
            if self.at_punct("#") {
                self.attr_is_cfg_test()?;
                continue;
            }
            // self receiver: `self`, `&self`, `&mut self`, `mut self`.
            let save = self.pos;
            let mut is_self = false;
            self.eat_punct("&");
            if matches!(self.peek(), Some(TokenKind::Lifetime(_))) {
                self.bump();
            }
            self.eat_kw("mut");
            if self.at_kw("self") {
                self.bump();
                is_self = true;
            } else {
                self.pos = save;
            }
            if is_self {
                params.push(Param {
                    name: Some("self".into()),
                    ty: qual.unwrap_or("Self").to_string(),
                    is_self: true,
                });
            } else {
                self.eat_kw("mut");
                let pname = match self.peek() {
                    Some(TokenKind::Ident(s)) if s != "_" => Some(s.clone()),
                    _ => None,
                };
                self.bump();
                self.expect_punct(":")?;
                let ty = self.parse_type_text()?;
                params.push(Param {
                    name: pname,
                    ty,
                    is_self: false,
                });
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_close(')')?;
        let ret_ty = if self.eat_punct("->") {
            Some(self.parse_type_text()?)
        } else {
            None
        };
        if self.at_kw("where") {
            while !self.at_open('{') && !self.at_punct(";") && self.peek().is_some() {
                if matches!(self.peek(), Some(TokenKind::Open(_))) {
                    self.skip_group()?;
                } else {
                    self.bump();
                }
            }
        }
        if self.eat_punct(";") {
            return Ok(None);
        }
        let body = self.parse_block()?;
        Ok(Some(Func {
            name,
            qual: qual.map(str::to_string),
            params,
            ret_ty,
            body,
            line,
        }))
    }

    // ---- statements ---------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        self.expect_open('{')?;
        let mut block = Block::default();
        while !self.at_close('}') {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            // Attributes inside blocks (e.g. `#[inline]` on nested items).
            if self.at_punct("#") {
                self.attr_is_cfg_test()?;
                continue;
            }
            if self.at_punct(";") {
                self.bump();
                continue;
            }
            if self.at_kw("let") {
                block.stmts.push(self.parse_let()?);
                continue;
            }
            // Nested items inside function bodies are not analyzed.
            if self.at_kw("fn") || self.at_kw("use") || self.at_kw("struct") || self.at_kw("impl") {
                let mut sub = SourceFile::default();
                self.parse_one_nested_item(&mut sub)?;
                block.stmts.push(Stmt::Item);
                continue;
            }
            if self.at_kw("const") || self.at_kw("static") {
                let mut sub = SourceFile::default();
                self.parse_const(&mut sub)?;
                block.stmts.push(Stmt::Item);
                continue;
            }
            let expr = self.parse_expr(false)?;
            if self.eat_punct(";") || block_like(&expr) {
                // `if`/`match`/loops need no semicolon as statements; an
                // operator continuation after them is not supported.
                if self.at_close('}') && !matches!(expr, Expr::If { .. } | Expr::Match { .. }) {
                    // Loop as final statement: still a statement.
                }
                block.stmts.push(Stmt::Expr(expr));
            } else if self.at_close('}') {
                block.tail = Some(Box::new(expr));
            } else {
                return Err(self.error("expected `;` or `}` after expression"));
            }
        }
        self.expect_close('}')?;
        // A trailing block-like statement is the block's value if nothing
        // follows it; fold the last Expr statement into the tail.
        if block.tail.is_none() {
            if let Some(Stmt::Expr(e)) = block.stmts.last() {
                if block_like(e) {
                    let e = e.clone();
                    block.stmts.pop();
                    block.tail = Some(Box::new(e));
                }
            }
        }
        Ok(block)
    }

    fn parse_one_nested_item(&mut self, file: &mut SourceFile) -> Result<(), ParseError> {
        if self.at_kw("fn") {
            let f = self.parse_fn(None)?;
            if let Some(f) = f {
                file.functions.push(f);
            }
            return Ok(());
        }
        if self.at_kw("use") {
            return self.skip_to_semi();
        }
        if self.at_kw("struct") {
            return self.parse_struct_or_enum(file);
        }
        if self.at_kw("impl") {
            self.bump();
            self.skip_generics()?;
            let _ = self.parse_type_text()?;
            if self.eat_kw("for") {
                let _ = self.parse_type_text()?;
            }
            return self.skip_group();
        }
        Err(self.error("unsupported nested item"))
    }

    fn parse_let(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.eat_kw("let");
        let pat = self.parse_pat()?;
        let ty = if self.eat_punct(":") {
            Some(self.parse_type_text()?)
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(false)?)
        } else {
            None
        };
        // `let ... else { ... }` divergence block.
        if self.at_kw("else") {
            self.bump();
            self.skip_group()?;
        }
        self.expect_punct(";")?;
        Ok(Stmt::Let {
            pat,
            ty,
            init,
            line,
        })
    }

    // ---- patterns -----------------------------------------------------

    fn parse_pat(&mut self) -> Result<Pat, ParseError> {
        let first = self.parse_pat_single()?;
        if !self.at_punct("|") {
            return Ok(first);
        }
        let mut alts = vec![first];
        while self.eat_punct("|") {
            alts.push(self.parse_pat_single()?);
        }
        Ok(Pat::Or(alts))
    }

    fn parse_pat_single(&mut self) -> Result<Pat, ParseError> {
        let line = self.line();
        if self.eat_punct("&&") {
            // `|&&x|` — two refs.
            self.eat_kw("mut");
            let inner = self.parse_pat_single()?;
            return Ok(Pat::Ref(Box::new(Pat::Ref(Box::new(inner)))));
        }
        if self.eat_punct("&") {
            self.eat_kw("mut");
            return Ok(Pat::Ref(Box::new(self.parse_pat_single()?)));
        }
        if self.eat_punct("..") || self.eat_punct("..=") {
            // Rest or open range pattern; any bound is a literal.
            if matches!(
                self.peek(),
                Some(TokenKind::Int(_) | TokenKind::Char | TokenKind::Ident(_))
            ) {
                self.bump();
            }
            return Ok(Pat::Wild);
        }
        if self.eat_punct("-") {
            self.bump();
            return Ok(Pat::Wild);
        }
        match self.peek().cloned() {
            Some(TokenKind::Int(_) | TokenKind::Float | TokenKind::Str | TokenKind::Char) => {
                self.bump();
                // Range patterns `0..=9`.
                if self.eat_punct("..=") || self.eat_punct("..") {
                    self.bump();
                }
                Ok(Pat::Wild)
            }
            Some(TokenKind::Open('(')) => {
                self.bump();
                let mut ps = Vec::new();
                while !self.at_close(')') {
                    ps.push(self.parse_pat()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_close(')')?;
                if ps.len() == 1 {
                    Ok(ps.pop().unwrap())
                } else {
                    Ok(Pat::Tuple(ps))
                }
            }
            Some(TokenKind::Open('[')) => {
                self.bump();
                let mut ps = Vec::new();
                while !self.at_close(']') {
                    ps.push(self.parse_pat()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_close(']')?;
                Ok(Pat::Slice(ps))
            }
            Some(TokenKind::Ident(first)) => {
                if first == "_" {
                    self.bump();
                    return Ok(Pat::Wild);
                }
                if first == "mut" || first == "ref" {
                    self.bump();
                    self.eat_kw("mut");
                    let Some(TokenKind::Ident(name)) = self.bump() else {
                        return Err(self.error("expected binding after mut/ref"));
                    };
                    return Ok(Pat::Ident(name, line));
                }
                if KEYWORD_NON_BINDING.contains(&first.as_str()) {
                    self.bump();
                    return Ok(Pat::Wild);
                }
                // Path: variant / struct / binding.
                let path = self.parse_path_segments()?;
                if self.at_open('(') {
                    self.bump();
                    let mut ps = Vec::new();
                    while !self.at_close(')') {
                        ps.push(self.parse_pat()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_close(')')?;
                    return Ok(Pat::TupleStruct(path, ps));
                }
                if self.at_open('{') {
                    self.bump();
                    let mut fields = Vec::new();
                    while !self.at_close('}') {
                        if self.eat_punct("..") {
                            break;
                        }
                        let Some(TokenKind::Ident(fname)) = self.bump() else {
                            return Err(self.error("expected field name in struct pattern"));
                        };
                        let fline = self.line();
                        let p = if self.eat_punct(":") {
                            self.parse_pat()?
                        } else {
                            Pat::Ident(fname.clone(), fline)
                        };
                        fields.push((fname, p));
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_close('}')?;
                    return Ok(Pat::Struct(path, fields));
                }
                if path.len() > 1 {
                    // Unit variant (`PresentKey::K80` without payload here,
                    // or `None`): binds nothing.
                    return Ok(Pat::Wild);
                }
                // Range pattern with a named bound?
                if self.eat_punct("..=") || self.eat_punct("..") {
                    self.bump();
                    return Ok(Pat::Wild);
                }
                let name = path.into_iter().next().unwrap();
                if name == "None" {
                    return Ok(Pat::Wild);
                }
                if name.chars().next().is_some_and(char::is_uppercase) {
                    // Bare unit-struct / variant path.
                    return Ok(Pat::Wild);
                }
                Ok(Pat::Ident(name, line))
            }
            _ => Err(self.error("unsupported pattern")),
        }
    }

    fn parse_path_segments(&mut self) -> Result<Vec<String>, ParseError> {
        let mut segs = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::Ident(s)) => {
                    segs.push(s.clone());
                    self.bump();
                }
                _ => return Err(self.error("expected path segment")),
            }
            if self.at_punct("::") {
                // Turbofish: `::<...>` is consumed and dropped.
                if matches!(self.peek_at(1), Some(TokenKind::Punct("<"))) {
                    self.bump();
                    self.skip_generics()?;
                    if !self.at_punct("::") {
                        break;
                    }
                    self.bump();
                    continue;
                }
                self.bump();
                continue;
            }
            break;
        }
        Ok(segs)
    }

    // ---- expressions --------------------------------------------------

    fn parse_expr(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        self.parse_assign(no_struct)
    }

    fn parse_assign(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let lhs = self.parse_range(no_struct)?;
        let line = self.line();
        for op in [
            "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
        ] {
            if self.at_punct(op) {
                self.bump();
                let rhs = self.parse_assign(no_struct)?;
                let op_static: &'static str = match op {
                    "=" => "=",
                    "+=" => "+=",
                    "-=" => "-=",
                    "*=" => "*=",
                    "/=" => "/=",
                    "%=" => "%=",
                    "^=" => "^=",
                    "&=" => "&=",
                    "|=" => "|=",
                    "<<=" => "<<=",
                    _ => ">>=",
                };
                return Ok(Expr::Assign(op_static, Box::new(lhs), Box::new(rhs), line));
            }
        }
        Ok(lhs)
    }

    fn parse_range(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let line = self.line();
        if self.at_punct("..") || self.at_punct("..=") {
            self.bump();
            if self.range_end_follows() {
                return Ok(Expr::Range(None, None, line));
            }
            let end = self.parse_binary(0, no_struct)?;
            return Ok(Expr::Range(None, Some(Box::new(end)), line));
        }
        let start = self.parse_binary(0, no_struct)?;
        if self.at_punct("..") || self.at_punct("..=") {
            self.bump();
            if self.range_end_follows() {
                return Ok(Expr::Range(Some(Box::new(start)), None, line));
            }
            let end = self.parse_binary(0, no_struct)?;
            return Ok(Expr::Range(
                Some(Box::new(start)),
                Some(Box::new(end)),
                line,
            ));
        }
        Ok(start)
    }

    fn range_end_follows(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(TokenKind::Close(_))
                | Some(TokenKind::Punct(","))
                | Some(TokenKind::Punct(";"))
        ) || self.at_open('{')
    }

    /// Binary operators by rising precedence level.
    fn parse_binary(&mut self, level: usize, no_struct: bool) -> Result<Expr, ParseError> {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level == LEVELS.len() {
            return self.parse_cast(no_struct);
        }
        let mut lhs = self.parse_binary(level + 1, no_struct)?;
        loop {
            let line = self.line();
            let mut matched = None;
            for op in LEVELS[level] {
                if self.at_punct(op) {
                    matched = Some(*op);
                    break;
                }
            }
            let Some(op) = matched else { return Ok(lhs) };
            self.bump();
            let rhs = self.parse_binary(level + 1, no_struct)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
    }

    fn parse_cast(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary(no_struct)?;
        while self.at_kw("as") {
            self.bump();
            let _ = self.parse_type_text()?;
            e = Expr::Cast(Box::new(e));
        }
        Ok(e)
    }

    fn parse_unary(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        if self.at_punct("!") || self.at_punct("-") || self.at_punct("*") {
            self.bump();
            return Ok(Expr::Unary(Box::new(self.parse_unary(no_struct)?)));
        }
        if self.at_punct("&") || self.at_punct("&&") {
            // `&&x` is two refs.
            let double = self.at_punct("&&");
            self.bump();
            self.eat_kw("mut");
            let inner = self.parse_unary(no_struct)?;
            let e = Expr::Unary(Box::new(inner));
            return Ok(if double { Expr::Unary(Box::new(e)) } else { e });
        }
        self.parse_postfix(no_struct)
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary(no_struct)?;
        loop {
            let line = self.line();
            if self.at_punct(".") {
                self.bump();
                match self.peek().cloned() {
                    Some(TokenKind::Ident(name)) => {
                        self.bump();
                        // Turbofish on methods — keep the type idents.
                        let mut turbofish = Vec::new();
                        if self.at_punct("::") {
                            self.bump();
                            let start = self.pos;
                            self.skip_generics()?;
                            for t in &self.tokens[start..self.pos] {
                                if let Some(s) = t.kind.ident() {
                                    turbofish.push(s.to_string());
                                }
                            }
                        }
                        if self.at_open('(') {
                            let args = self.parse_call_args()?;
                            e = Expr::MethodCall(Box::new(e), name, turbofish, args, line);
                        } else if name == "await" {
                            // no-op
                        } else {
                            e = Expr::Field(Box::new(e), name, line);
                        }
                    }
                    Some(TokenKind::Int(_)) => {
                        self.bump();
                        e = Expr::TupleField(Box::new(e), line);
                    }
                    Some(TokenKind::Float) => {
                        // `t.0.1` lexes the `.0.1` as a float; treat as
                        // nested tuple access.
                        self.bump();
                        e = Expr::TupleField(Box::new(e), line);
                    }
                    _ => return Err(self.error("expected field or method after `.`")),
                }
                continue;
            }
            if self.at_open('(') {
                let args = self.parse_call_args()?;
                e = Expr::Call(Box::new(e), args, line);
                continue;
            }
            if self.at_open('[') {
                self.bump();
                let idx = self.parse_expr(false)?;
                self.expect_close(']')?;
                e = Expr::Index(Box::new(e), Box::new(idx), line);
                continue;
            }
            if self.at_punct("?") {
                self.bump();
                e = Expr::Try(Box::new(e));
                continue;
            }
            return Ok(e);
        }
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_open('(')?;
        let mut args = Vec::new();
        while !self.at_close(')') {
            args.push(self.parse_expr(false)?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_close(')')?;
        Ok(args)
    }

    fn parse_primary(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.peek().cloned() {
            Some(TokenKind::Int(_) | TokenKind::Float | TokenKind::Str | TokenKind::Char) => {
                self.bump();
                Ok(Expr::Lit)
            }
            // Loop label: `'outer: loop { … }` — the label is dropped, the
            // labelled loop/block parses normally.
            Some(TokenKind::Lifetime(_))
                if matches!(self.peek_at(1), Some(TokenKind::Punct(":"))) =>
            {
                self.bump();
                self.bump();
                self.parse_primary(no_struct)
            }
            Some(TokenKind::Open('(')) => {
                self.bump();
                let mut items = Vec::new();
                let mut is_tuple = false;
                while !self.at_close(')') {
                    items.push(self.parse_expr(false)?);
                    if self.eat_punct(",") {
                        is_tuple = true;
                    } else {
                        break;
                    }
                }
                self.expect_close(')')?;
                if is_tuple || items.len() != 1 {
                    Ok(Expr::Tuple(items))
                } else {
                    Ok(items.pop().unwrap())
                }
            }
            Some(TokenKind::Open('[')) => {
                self.bump();
                let mut items = Vec::new();
                while !self.at_close(']') {
                    items.push(self.parse_expr(false)?);
                    if self.eat_punct(";") {
                        // `[elem; n]` — length is a const expression.
                        let _ = self.parse_expr(false)?;
                        break;
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_close(']')?;
                Ok(Expr::Array(items))
            }
            Some(TokenKind::Open('{')) => Ok(Expr::Block(self.parse_block()?)),
            Some(TokenKind::Punct("|")) | Some(TokenKind::Punct("||")) => self.parse_closure(),
            Some(TokenKind::Ident(word)) => match word.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "for" => self.parse_for(),
                "while" => self.parse_while(),
                "loop" => {
                    self.bump();
                    Ok(Expr::Loop(self.parse_block()?))
                }
                "move" => {
                    self.bump();
                    self.parse_closure()
                }
                "return" => {
                    self.bump();
                    if self.return_value_follows() {
                        Ok(Expr::Return(Some(Box::new(self.parse_expr(false)?)), line))
                    } else {
                        Ok(Expr::Return(None, line))
                    }
                }
                "break" => {
                    self.bump();
                    if matches!(self.peek(), Some(TokenKind::Lifetime(_))) {
                        self.bump();
                    }
                    if self.return_value_follows() {
                        Ok(Expr::Jump(Some(Box::new(self.parse_expr(false)?)), line))
                    } else {
                        Ok(Expr::Jump(None, line))
                    }
                }
                "continue" => {
                    self.bump();
                    if matches!(self.peek(), Some(TokenKind::Lifetime(_))) {
                        self.bump();
                    }
                    Ok(Expr::Jump(None, line))
                }
                "unsafe" => {
                    self.bump();
                    Ok(Expr::Block(self.parse_block()?))
                }
                "true" | "false" => {
                    self.bump();
                    Ok(Expr::Lit)
                }
                _ => {
                    let path = self.parse_path_segments()?;
                    // Macro invocation.
                    if self.at_punct("!") {
                        self.bump();
                        let name = path.last().cloned().unwrap_or_default();
                        let args = self.parse_macro_args()?;
                        return Ok(Expr::Macro(name, args, line));
                    }
                    // Struct literal.
                    if self.at_open('{') && !no_struct && struct_path(&path) {
                        self.bump();
                        let mut fields = Vec::new();
                        while !self.at_close('}') {
                            if self.eat_punct("..") {
                                let base = self.parse_expr(false)?;
                                fields.push(("..".into(), base));
                                break;
                            }
                            let Some(TokenKind::Ident(fname)) = self.bump() else {
                                return Err(self.error("expected field in struct literal"));
                            };
                            let value = if self.eat_punct(":") {
                                self.parse_expr(false)?
                            } else {
                                Expr::Path(vec![fname.clone()], line)
                            };
                            fields.push((fname, value));
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_close('}')?;
                        return Ok(Expr::StructLit(path, fields, line));
                    }
                    Ok(Expr::Path(path, line))
                }
            },
            _ => Err(self.error("unsupported expression")),
        }
    }

    fn return_value_follows(&self) -> bool {
        !matches!(
            self.peek(),
            None | Some(TokenKind::Punct(";"))
                | Some(TokenKind::Punct(","))
                | Some(TokenKind::Close(_))
        )
    }

    fn parse_closure(&mut self) -> Result<Expr, ParseError> {
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // No parameters.
        } else {
            self.expect_punct("|")?;
            while !self.at_punct("|") {
                // `parse_pat_single`, not `parse_pat`: the closing `|` of the
                // parameter list must not start an or-pattern.
                params.push(self.parse_pat_single()?);
                if self.eat_punct(":") {
                    let _ = self.parse_type_text()?;
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct("|")?;
        }
        if self.eat_punct("->") {
            let _ = self.parse_type_text()?;
        }
        let body = self.parse_expr(false)?;
        Ok(Expr::Closure {
            params,
            body: Box::new(body),
        })
    }

    fn parse_macro_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let Some(TokenKind::Open(delim)) = self.peek().cloned() else {
            return Err(self.error("expected macro arguments"));
        };
        // Best effort: try to parse the contents as comma-separated
        // expressions; fall back to skipping the group when the macro's
        // grammar is not expression-like (`matches!`, custom DSLs).
        let save = self.pos;
        self.bump();
        let mut args = Vec::new();
        let ok = loop {
            if self.at_close(close_of(delim)) {
                self.bump();
                break true;
            }
            match self.parse_expr(false) {
                Ok(e) => args.push(e),
                Err(_) => break false,
            }
            if !self.eat_punct(",") {
                if self.at_close(close_of(delim)) {
                    self.bump();
                    break true;
                }
                break false;
            }
        };
        if ok {
            return Ok(args);
        }
        self.pos = save;
        self.skip_group()?;
        Ok(args)
    }

    fn parse_if(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.eat_kw("if");
        let (pat, cond) = if self.eat_kw("let") {
            let p = self.parse_pat()?;
            self.expect_punct("=")?;
            (Some(p), self.parse_expr(true)?)
        } else {
            (None, self.parse_expr(true)?)
        };
        let then_block = self.parse_block()?;
        let else_expr = if self.eat_kw("else") {
            if self.at_kw("if") {
                Some(Box::new(self.parse_if()?))
            } else {
                Some(Box::new(Expr::Block(self.parse_block()?)))
            }
        } else {
            None
        };
        Ok(Expr::If {
            cond: Box::new(cond),
            pat,
            then_block,
            else_expr,
            line,
        })
    }

    fn parse_match(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.eat_kw("match");
        let scrutinee = self.parse_expr(true)?;
        self.expect_open('{')?;
        let mut arms = Vec::new();
        while !self.at_close('}') {
            if self.at_punct("#") {
                self.attr_is_cfg_test()?;
                continue;
            }
            let pat = self.parse_pat()?;
            let guard = if self.eat_kw("if") {
                Some(self.parse_expr(true)?)
            } else {
                None
            };
            self.expect_punct("=>")?;
            // A braced arm body is a block, never the head of a postfix
            // chain — `{ .. } (pat) => ..` must not parse as a call.
            let body = if self.at_open('{') {
                Expr::Block(self.parse_block()?)
            } else {
                self.parse_expr(false)?
            };
            self.eat_punct(",");
            arms.push((pat, guard, body));
        }
        self.expect_close('}')?;
        Ok(Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        })
    }

    fn parse_for(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.eat_kw("for");
        let pat = self.parse_pat()?;
        if !self.eat_kw("in") {
            return Err(self.error("expected `in` in for loop"));
        }
        let iter = self.parse_expr(true)?;
        let body = self.parse_block()?;
        Ok(Expr::For {
            pat,
            iter: Box::new(iter),
            body,
            line,
        })
    }

    fn parse_while(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.eat_kw("while");
        let (pat, cond) = if self.eat_kw("let") {
            let p = self.parse_pat()?;
            self.expect_punct("=")?;
            (Some(p), self.parse_expr(true)?)
        } else {
            (None, self.parse_expr(true)?)
        };
        let body = self.parse_block()?;
        Ok(Expr::While {
            cond: Box::new(cond),
            pat,
            body,
            line,
        })
    }
}

fn matching(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn close_of(open: char) -> char {
    matching(open)
}

fn block_like(e: &Expr) -> bool {
    matches!(
        e,
        Expr::If { .. }
            | Expr::Match { .. }
            | Expr::For { .. }
            | Expr::While { .. }
            | Expr::Loop(_)
            | Expr::Block(_)
    )
}

/// Whether a path can start a struct literal (`Access { .. }`, `Self { .. }`).
fn struct_path(path: &[String]) -> bool {
    path.last()
        .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
}

/// The last type-ish identifier in a type text (`& 'a TableGift64` →
/// `TableGift64`, `Vec < RoundKey64 >` → `RoundKey64`).
pub fn last_type_ident(ty: &str) -> String {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
        .rfind(|s| !matches!(*s, "mut" | "dyn" | "ref" | "const"))
        .unwrap_or_default()
        .to_string()
}

/// The first concrete type identifier in a type text, skipping wrappers
/// (`Vec < RoundKey64 >` → `Vec`; use [`last_type_ident`] for the element).
pub fn first_type_ident(ty: &str) -> String {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
        .find(|s| !matches!(*s, "mut" | "dyn" | "ref" | "const" | "impl"))
        .unwrap_or_default()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_function() {
        let file = parse_file("fn add(a: u64, b: u64) -> u64 { let c = a + b; c }").unwrap();
        assert_eq!(file.functions.len(), 1);
        let f = &file.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert!(f.body.tail.is_some());
    }

    #[test]
    fn parses_impl_methods_with_self() {
        let file =
            parse_file("struct S { x: u64 }\nimpl S {\n  pub fn get(&self) -> u64 { self.x }\n}")
                .unwrap();
        assert_eq!(file.functions[0].qualified_name(), "S::get");
        assert!(file.functions[0].params[0].is_self);
        assert_eq!(file.structs[0].fields[0].0, "x");
    }

    #[test]
    fn skips_cfg_test_modules() {
        let file =
            parse_file("fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { not rust at all } }")
                .unwrap();
        assert_eq!(file.functions.len(), 1);
        assert_eq!(file.functions[0].name, "live");
    }

    #[test]
    fn captures_array_consts() {
        let file = parse_file(
            "pub const T: [u8; 16] = [0; 16];\nconst N: usize = 48;\nconst R: [u8; N] = x();",
        )
        .unwrap();
        assert_eq!(file.consts.len(), 3);
        assert!(matches!(file.consts[0].len, Some(ConstLen::Lit(16))));
        assert_eq!(file.consts[1].value, Some(48));
        assert!(matches!(&file.consts[2].len, Some(ConstLen::Named(n)) if n == "N"));
    }

    #[test]
    fn parses_control_flow_and_indexing() {
        let src = r#"
            fn f(state: u64, t: [u8; 16]) -> u64 {
                let mut out = 0u64;
                for i in 0..16 {
                    let nib = ((state >> (4 * i)) & 0xf) as u8;
                    if nib & 1 == 0 { out ^= u64::from(t[nib as usize]); }
                }
                while out > 3 { out -= 1; }
                match out { 0 => 1, _ => out }
            }
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_closures_macros_and_struct_literals() {
        let src = r#"
            fn g(v: Vec<u64>) -> u64 {
                let s: u64 = v.iter().map(|x| x + 1).sum();
                assert!(s > 0, "bad {s}");
                let a = Access { addr: s, kind: AccessKind::SboxRead };
                a.addr
            }
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_labelled_loops() {
        let src = "fn f(n: usize) -> usize {\n\
                   let mut c = 0;\n\
                   'outer: loop {\n\
                     for i in 0..n {\n\
                       if i == 3 { break 'outer; }\n\
                       c += 1;\n\
                     }\n\
                     break 'outer c;\n\
                   }\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_enums_with_payloads() {
        let file = parse_file("pub enum PresentKey { K80(u128), K128(u128) }").unwrap();
        assert_eq!(file.structs[0].name, "PresentKey");
        assert_eq!(file.structs[0].fields.len(), 2);
        assert_eq!(file.structs[0].fields[0].1, "u128");
    }

    #[test]
    fn parses_raw_strings_and_raw_string_sinks() {
        let src = "fn f() -> String {\n\
                   let a = r\"no \\escapes here\";\n\
                   let b = r#\"quote \" inside, even }{ braces\"#;\n\
                   let c = r##\"nested \"# terminator\"##;\n\
                   format!(\"{a}{b}{c}\")\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_nested_turbofish_generics() {
        let src = "fn f(v: Vec<Vec<u64>>) -> Vec<(usize, u64)> {\n\
                   let flat = v.into_iter().flatten().collect::<Vec<u64>>();\n\
                   let pairs = flat.iter().copied().enumerate().collect::<Vec<(usize, u64)>>();\n\
                   let _deep = Vec::<BTreeMap<String, Vec<u8>>>::new();\n\
                   pairs\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_matches_and_write_macro_bodies() {
        let src = "fn f(x: Option<u32>, out: &mut String) -> bool {\n\
                   write!(out, \"x={:>8}\", x.unwrap_or(0)).unwrap();\n\
                   writeln!(out, \"{}\", 1 + 2).unwrap();\n\
                   matches!(x, Some(v) if v > 3) || matches!(x, None)\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn parses_lifetimes_in_impl_headers_and_types() {
        let src = "pub struct View<'a> { data: &'a [u8] }\n\
                   impl<'a> View<'a> {\n\
                     pub fn first(&self) -> Option<&'a u8> { self.data.first() }\n\
                     pub fn rest(&'a self) -> &'a [u8] { &self.data[1..] }\n\
                   }\n\
                   impl<'a> Iterator for View<'a> {\n\
                     type Item = &'a u8;\n\
                     fn next(&mut self) -> Option<Self::Item> { None }\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 3);
        assert_eq!(file.functions[0].qualified_name(), "View::first");
    }

    #[test]
    fn match_arm_block_followed_by_tuple_pattern_is_not_a_call() {
        // Regression: `{ .. }` arm bodies must not absorb the next arm's
        // parenthesized pattern as a call-argument list.
        let src = "fn f(a: &str, b: &str) -> u32 {\n\
                   match (a, b) {\n\
                     (\"x\", \"y\") => {\n\
                       let t = 1;\n\
                       let _ = t;\n\
                     }\n\
                     (\"x\", _) => {}\n\
                     _ => {}\n\
                   }\n\
                   0\n\
                   }";
        let file = parse_file(src).unwrap();
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn type_ident_helpers() {
        assert_eq!(last_type_ident("& 'a mut TableGift64"), "TableGift64");
        assert_eq!(last_type_ident("Vec < RoundKey64 >"), "RoundKey64");
        assert_eq!(
            first_type_ident("& mut dyn MemoryObserver"),
            "MemoryObserver"
        );
    }
}
