//! Secret-taint dataflow over the lightweight AST.
//!
//! The analysis is **crate-scoped, interprocedural and field-sensitive**:
//! all source files are analyzed together with per-function summaries, and
//! calls resolve through a crate-level [`CallGraph`] — the current module
//! first (with exactly the module-local rules the analyzer has always
//! used), then a unique crate-wide match. Struct layouts and constant-table
//! sizes are resolved crate-wide too (so `aead.rs` knows that `Gift128`
//! carries round keys even though the type lives in `bitwise.rs`). Calls
//! that still cannot be resolved — ambiguous names, trait objects, the
//! standard library — are *opaque*: taint propagates through their
//! arguments into their result, but no findings are attributed through
//! them. A table lookup is therefore always reported in the file where the
//! indexing expression is written, which is where the fix belongs.
//!
//! Taint is a set of [`Root`]s. `Root::Secret` roots (declared secret
//! sources: secret-typed values, secret-named bindings, secret-bearing
//! struct fields, `// ct-secret`-marked bindings) are unconditionally hot.
//! `Root::Param` roots are *guards*: a finding whose only taint is "this
//! function's parameter `i`" fires only if some call site passes secret
//! data in that position — resolved by a crate-wide fixpoint over recorded
//! call sites. This is what keeps `bitwise.rs` clean:
//! `ROUND_CONSTANTS[round]` is guarded on `round`, and every caller passes
//! a public loop counter.

use crate::ast::{
    first_type_ident, last_type_ident, Block, ConstLen, Expr, Func, Pat, SourceFile, Stmt,
};
use crate::callgraph::CallGraph;
use crate::report::{Finding, FindingKind};
use std::collections::{BTreeMap, BTreeSet};

/// What the analysis treats as a secret source.
#[derive(Clone, Debug)]
pub struct SecretConfig {
    /// Type names whose values are secret outright (all fields included).
    pub secret_types: BTreeSet<String>,
    /// Binding/field names that are secret sources wherever they appear.
    pub secret_names: BTreeSet<String>,
}

impl Default for SecretConfig {
    fn default() -> Self {
        let secret_types = ["Key", "KeyState", "RoundKey64", "RoundKey128", "PresentKey"]
            .into_iter()
            .map(str::to_string)
            .collect();
        let secret_names = ["state", "round_keys", "key"]
            .into_iter()
            .map(str::to_string)
            .collect();
        Self {
            secret_types,
            secret_names,
        }
    }
}

/// A constant lookup table discovered in the crate.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Total size in bytes, when the element type and length are known.
    pub bytes: Option<u64>,
    /// Per-element width in bytes (the access *stride*), when known.
    pub elem_bytes: Option<u64>,
    /// File the table is defined in.
    pub file: String,
}

/// Crate-wide registries: struct layouts, secret-bearing types, const tables.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// `struct/enum name -> (field name, field type text)`.
    pub structs: BTreeMap<String, Vec<(String, String)>>,
    /// Types that transitively contain a secret field.
    pub secret_bearing: BTreeSet<String>,
    /// `const NAME: [elem; N]` arrays usable as lookup tables.
    pub tables: BTreeMap<String, TableDef>,
}

/// Byte width of a primitive element type, if known.
fn elem_size(ty: &str) -> Option<u64> {
    Some(match ty {
        "u8" | "i8" | "bool" => 1,
        "u16" | "i16" => 2,
        "u32" | "i32" | "f32" | "char" => 4,
        "u64" | "i64" | "f64" | "usize" | "isize" => 8,
        "u128" | "i128" => 16,
        _ => return None,
    })
}

/// Identifier-words of a type text.
fn ty_words(ty: &str) -> impl Iterator<Item = &str> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
}

impl Registry {
    /// Builds the crate-wide registry from all parsed files.
    pub fn build(files: &[(String, SourceFile)], config: &SecretConfig) -> Self {
        let mut reg = Registry::default();
        let mut scalars: BTreeMap<String, u128> = BTreeMap::new();
        for (label, file) in files {
            for s in &file.structs {
                reg.structs.insert(s.name.clone(), s.fields.clone());
            }
            for c in &file.consts {
                if let Some(v) = c.value {
                    scalars.insert(c.name.clone(), v);
                }
            }
            let _ = label;
        }
        for (label, file) in files {
            for c in &file.consts {
                let Some(elem) = &c.elem_ty else { continue };
                let len = match &c.len {
                    Some(ConstLen::Lit(v)) => Some(*v),
                    Some(ConstLen::Named(n)) => scalars.get(n).copied(),
                    None => None,
                };
                let bytes = match (elem_size(elem), len) {
                    (Some(es), Some(l)) => Some(es * l as u64),
                    _ => None,
                };
                reg.tables.insert(
                    c.name.clone(),
                    TableDef {
                        bytes,
                        elem_bytes: elem_size(elem),
                        file: label.clone(),
                    },
                );
            }
        }
        // Transitive closure of "contains a secret field".
        loop {
            let mut changed = false;
            for (name, fields) in &reg.structs {
                if reg.secret_bearing.contains(name) {
                    continue;
                }
                let carries = fields.iter().any(|(fname, fty)| {
                    config.secret_names.contains(fname)
                        || ty_words(fty).any(|w| {
                            config.secret_types.contains(w) || reg.secret_bearing.contains(w)
                        })
                });
                if carries {
                    reg.secret_bearing.insert(name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        reg
    }

    fn field_of(&self, ty: &str, field: &str) -> Option<&(String, String)> {
        self.structs.get(ty)?.iter().find(|(f, _)| f == field)
    }
}

/// One taint root.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Root {
    /// A declared secret source (always hot). Carries a description used in
    /// provenance chains.
    Secret(String),
    /// Parameter `1` of function `0` (crate-wide global function id): hot
    /// only if some call site passes tainted data there.
    Param(usize, usize),
}

type Taint = BTreeSet<Root>;

/// Witnessing call sites per hot `(callee, param)` pair: the caller's
/// function index, the call line, and the taint root the argument carried.
type WitnessMap = BTreeMap<(usize, usize), Vec<(usize, u32, Root)>>;

/// A finding before hotness resolution and severity assignment.
#[derive(Clone, Debug, PartialEq)]
struct RawFinding {
    kind: FindingKind,
    line: u32,
    table: Option<String>,
    taint: Taint,
    detail: String,
}

#[derive(Clone, Debug, PartialEq)]
struct CallSite {
    callee: usize,
    /// Taint of each argument in callee-parameter order (receiver first for
    /// methods).
    args: Vec<Taint>,
    line: u32,
}

#[derive(Clone, Debug, Default, PartialEq)]
struct FnSummary {
    ret: Taint,
    ret_ty: Option<String>,
    findings: Vec<RawFinding>,
    calls: Vec<CallSite>,
}

/// Analyzes all parsed files of a crate together and returns the findings,
/// grouped by file (input order) and sorted by line within each file.
/// Severity is assigned later (it depends on the cache-line size).
pub fn analyze_crate(
    files: &[(String, SourceFile)],
    config: &SecretConfig,
    registry: &Registry,
) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let ctx = CrateCtx {
        files,
        config,
        registry,
        graph: &graph,
    };
    // Iterate summaries to a fixpoint: each pass recomputes every function
    // against the previous pass's summaries, so return taint propagates one
    // call deeper per pass. Taint only grows over a finite root universe, so
    // equality is reached; the cap guards degenerate recursion.
    let mut summaries: Vec<FnSummary> = vec![FnSummary::default(); graph.len()];
    for _ in 0..32 {
        let next: Vec<FnSummary> = (0..graph.len())
            .map(|g| ctx.walk_fn(g, &summaries))
            .collect();
        let done = next == summaries;
        summaries = next;
        if done {
            break;
        }
    }

    // Crate-wide parameter-hotness fixpoint over recorded call sites.
    let mut hot: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut witnesses: WitnessMap = BTreeMap::new();
    loop {
        let mut changed = false;
        for (caller, s) in summaries.iter().enumerate() {
            for call in &s.calls {
                for (i, argt) in call.args.iter().enumerate() {
                    let via = argt.iter().find(|r| match r {
                        Root::Secret(_) => true,
                        Root::Param(f, p) => hot.contains(&(*f, *p)),
                    });
                    if let Some(via) = via {
                        let key = (call.callee, i);
                        let w = witnesses.entry(key).or_default();
                        if !w.iter().any(|(c, l, _)| *c == caller && *l == call.line) {
                            w.push((caller, call.line, via.clone()));
                        }
                        if hot.insert(key) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Emit findings whose taint resolves hot, file by file.
    let mut findings = Vec::new();
    for (file_idx, (label, module)) in files.iter().enumerate() {
        let mut file_findings = Vec::new();
        for &g in &graph.by_file[file_idx] {
            let s = &summaries[g];
            let func = &module.functions[graph.fns[g].1];
            for raw in &s.findings {
                let hot_roots: Vec<&Root> = raw
                    .taint
                    .iter()
                    .filter(|r| match r {
                        Root::Secret(_) => true,
                        Root::Param(f, p) => hot.contains(&(*f, *p)),
                    })
                    .collect();
                if hot_roots.is_empty() {
                    continue;
                }
                let mut provenance = Vec::new();
                let mut visited = BTreeSet::new();
                for root in hot_roots {
                    ctx.explain(root, &witnesses, &mut provenance, &mut visited, 0);
                }
                let suppressed = module
                    .allows
                    .get(&raw.line)
                    .or_else(|| module.allows.get(&raw.line.saturating_sub(1)))
                    .cloned();
                let table_bytes = raw
                    .table
                    .as_ref()
                    .and_then(|t| registry.tables.get(t))
                    .and_then(|t| t.bytes);
                file_findings.push(Finding {
                    file: label.to_string(),
                    line: raw.line,
                    kind: raw.kind,
                    function: func.qualified_name(),
                    table: raw.table.clone(),
                    table_bytes,
                    severity: crate::report::Severity::Leak, // refined by Report
                    provenance,
                    suppressed,
                    detail: raw.detail.clone(),
                });
            }
        }
        file_findings.sort_by(|a, b| (a.line, a.kind, &a.detail).cmp(&(b.line, b.kind, &b.detail)));
        file_findings.dedup_by(|a, b| (a.line, a.kind, &a.table) == (b.line, b.kind, &b.table));
        findings.extend(file_findings);
    }
    findings
}

struct CrateCtx<'a> {
    files: &'a [(String, SourceFile)],
    config: &'a SecretConfig,
    registry: &'a Registry,
    graph: &'a CallGraph,
}

impl CrateCtx<'_> {
    /// The function behind a global id.
    fn func(&self, gid: usize) -> &Func {
        let (file, local) = self.graph.fns[gid];
        &self.files[file].1.functions[local]
    }

    fn explain(
        &self,
        root: &Root,
        witnesses: &WitnessMap,
        out: &mut Vec<String>,
        visited: &mut BTreeSet<Root>,
        depth: usize,
    ) {
        if depth > 6 || !visited.insert(root.clone()) {
            return;
        }
        match root {
            Root::Secret(desc) => out.push(desc.clone()),
            Root::Param(f, p) => {
                let func = self.func(*f);
                let pname = func
                    .params
                    .get(*p)
                    .and_then(|prm| prm.name.clone())
                    .unwrap_or_else(|| format!("#{p}"));
                if let Some(ws) = witnesses.get(&(*f, *p)) {
                    for (caller, line, via) in ws.iter().take(3) {
                        let caller_name = self.func(*caller).qualified_name();
                        let caller_label = &self.files[self.graph.fns[*caller].0].0;
                        out.push(format!(
                            "`{}` parameter `{}` receives tainted data from `{}` ({}:{})",
                            func.qualified_name(),
                            pname,
                            caller_name,
                            caller_label,
                            line
                        ));
                        self.explain(via, witnesses, out, visited, depth + 1);
                    }
                }
            }
        }
    }

    /// True if the type text names (or wraps) a directly secret type.
    fn ty_is_secret(&self, ty: &str) -> bool {
        ty_words(ty).any(|w| self.config.secret_types.contains(w))
    }

    /// True if the type text names a secret-bearing struct.
    fn ty_is_carrier(&self, ty: &str) -> bool {
        ty_words(ty).any(|w| self.registry.secret_bearing.contains(w))
    }

    /// The single identifier used for field/method resolution, `Self`
    /// resolved against the impl type.
    fn resolve_ty(&self, ty: &str, qual: Option<&str>) -> Option<String> {
        if ty_words(ty).any(|w| w == "Self") {
            return qual.map(str::to_string);
        }
        let last = last_type_ident(ty);
        if last.is_empty() {
            None
        } else {
            Some(last)
        }
    }

    fn resolve_method(&self, cur_file: usize, recv_ty: Option<&str>, name: &str) -> Option<usize> {
        self.graph.resolve_method(cur_file, recv_ty, name)
    }

    fn resolve_call(&self, cur_file: usize, path: &[String], qual: Option<&str>) -> Option<usize> {
        match path {
            [name] => self.graph.resolve_free(cur_file, name),
            [ty, name] => {
                let ty = if ty == "Self" {
                    qual?.to_string()
                } else {
                    ty.clone()
                };
                self.graph.resolve_assoc(cur_file, &ty, name)
            }
            _ => None,
        }
    }

    fn walk_fn(&self, gid: usize, summaries: &[FnSummary]) -> FnSummary {
        let (cur_file, local) = self.graph.fns[gid];
        let module = &self.files[cur_file].1;
        let func = &module.functions[local];
        let mut w = Walker {
            ctx: self,
            cur_file,
            func,
            summaries,
            scopes: vec![BTreeMap::new()],
            branch_stack: Vec::new(),
            accesses: Vec::new(),
            out: FnSummary {
                ret_ty: func
                    .ret_ty
                    .as_deref()
                    .and_then(|t| self.resolve_ty(t, func.qual.as_deref())),
                ..FnSummary::default()
            },
        };
        // A `// ct-secret` mark on (or just above) the `fn` line declares
        // every named non-self parameter a secret source.
        let fn_marked = module.secret_marks.contains_key(&func.line)
            || module
                .secret_marks
                .contains_key(&func.line.saturating_sub(1));
        for (i, p) in func.params.iter().enumerate() {
            let ty = if p.is_self {
                Some(p.ty.clone())
            } else {
                self.resolve_ty(&p.ty, func.qual.as_deref())
            };
            let name = p.name.clone().unwrap_or_default();
            let mut roots = Taint::new();
            if self.ty_is_secret(&p.ty) {
                roots.insert(Root::Secret(format!(
                    "parameter `{name}` of `{}` has secret type `{}`",
                    func.qualified_name(),
                    p.ty
                )));
            } else if !p.is_self && self.config.secret_names.contains(&name) {
                roots.insert(Root::Secret(format!(
                    "parameter `{name}` of `{}` is a declared secret source",
                    func.qualified_name()
                )));
            } else if self.ty_is_carrier(&p.ty) {
                roots.insert(Root::Secret(format!(
                    "parameter `{name}` of `{}`: type `{}` carries secret fields",
                    func.qualified_name(),
                    first_type_ident(&p.ty)
                )));
            } else if fn_marked && !p.is_self {
                roots.insert(Root::Secret(format!(
                    "parameter `{name}` of `{}` marked `// ct-secret`",
                    func.qualified_name()
                )));
            } else {
                roots.insert(Root::Param(gid, i));
            }
            if !name.is_empty() {
                w.bind(&name, roots, ty);
            }
        }
        let tail = w.walk_block(&func.body);
        w.out.ret = union(w.out.ret.clone(), tail.0);
        if w.out.ret_ty.is_none() {
            w.out.ret_ty = tail.1;
        }
        // Within-function dedup (loop bodies are walked twice).
        let mut merged: BTreeMap<(FindingKind, u32, Option<String>), RawFinding> = BTreeMap::new();
        for f in std::mem::take(&mut w.out.findings) {
            merged
                .entry((f.kind, f.line, f.table.clone()))
                .and_modify(|e| e.taint.extend(f.taint.iter().cloned()))
                .or_insert(f);
        }
        w.out.findings = merged.into_values().collect();
        w.out
    }
}

fn union(mut a: Taint, b: Taint) -> Taint {
    a.extend(b);
    a
}

type Value = (Taint, Option<String>);

/// Iterator adapters that forward the underlying collection.
const PEEL_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "by_ref",
    "rev",
    "copied",
    "cloned",
    "windows",
    "chunks",
    "chunks_exact",
];

/// Methods whose result is public regardless of receiver taint (container
/// shape, not contents).
const PUBLIC_METHODS: &[&str] = &["len", "is_empty", "capacity", "count"];

/// Macros whose arguments are control-flow checks.
const CHECK_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
];

/// One branch arm's table-access footprint: the set of `(table, element
/// bytes)` pairs it touches. Arms of a secret-dependent branch with
/// *different* non-empty footprints leak through access width/stride even
/// when every individual index is public.
type Footprint = BTreeSet<(String, u64)>;

fn fmt_footprint(fp: &Footprint) -> String {
    fp.iter()
        .map(|(t, b)| {
            if *b > 0 {
                format!("`{t}`({b}B)")
            } else {
                format!("`{t}`")
            }
        })
        .collect::<Vec<_>>()
        .join("+")
}

struct Walker<'a> {
    ctx: &'a CrateCtx<'a>,
    cur_file: usize,
    func: &'a Func,
    summaries: &'a [FnSummary],
    scopes: Vec<BTreeMap<String, Value>>,
    /// Condition taint of each enclosing secret-testable branch (if/match
    /// arms, while bodies); drives the early-return finding.
    branch_stack: Vec<Taint>,
    /// Log of registry-table accesses, appended in walk order; branch arms
    /// diff slices of it to compare footprints.
    accesses: Vec<(String, u64)>,
    out: FnSummary,
}

impl Walker<'_> {
    fn module(&self) -> &SourceFile {
        &self.ctx.files[self.cur_file].1
    }

    /// Union of all enclosing branch-condition taints.
    fn branch_taint(&self) -> Taint {
        self.branch_stack
            .iter()
            .flat_map(|t| t.iter().cloned())
            .collect()
    }

    /// The footprint accumulated since `start`.
    fn footprint(&self, start: usize) -> Footprint {
        self.accesses[start..].iter().cloned().collect()
    }

    fn bind(&mut self, name: &str, taint: Taint, ty: Option<String>) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), (taint, ty));
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Weak (union) update of an existing binding, searching outward.
    fn weak_update(&mut self, name: &str, taint: Taint) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some((t, _)) = scope.get_mut(name) {
                t.extend(taint);
                return;
            }
        }
        // Assignment to an unbound name (e.g. a static): ignore.
    }

    fn finding(
        &mut self,
        kind: FindingKind,
        line: u32,
        table: Option<String>,
        taint: &Taint,
        detail: String,
    ) {
        if taint.is_empty() {
            return;
        }
        self.out.findings.push(RawFinding {
            kind,
            line,
            table,
            taint: taint.clone(),
            detail,
        });
    }

    fn qual(&self) -> Option<&str> {
        self.func.qual.as_deref()
    }

    fn walk_block(&mut self, block: &Block) -> Value {
        self.scopes.push(BTreeMap::new());
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    ty,
                    init,
                    line,
                } => {
                    let (taint, ity) = match init {
                        Some(e) => self.walk_expr(e),
                        None => (Taint::new(), None),
                    };
                    let ascribed = ty
                        .as_deref()
                        .and_then(|t| self.ctx.resolve_ty(t, self.qual()));
                    let bty = ascribed.or(ity);
                    // A `// ct-secret` mark on (or just above) the `let`
                    // declares the bound names secret sources.
                    let marked = self.module().secret_marks.contains_key(line)
                        || self
                            .module()
                            .secret_marks
                            .contains_key(&line.saturating_sub(1));
                    let bindings = pat.bindings();
                    let single = bindings.len() == 1;
                    for (name, _) in bindings {
                        let mut t = taint.clone();
                        if marked {
                            t.insert(Root::Secret(format!("`{name}` marked `// ct-secret`")));
                        }
                        self.bind(&name, t, if single { bty.clone() } else { None });
                    }
                }
                Stmt::Expr(e) => {
                    self.walk_expr(e);
                }
                Stmt::Item => {}
            }
        }
        let v = match &block.tail {
            Some(e) => self.walk_expr(e),
            None => (Taint::new(), None),
        };
        self.scopes.pop();
        v
    }

    fn walk_expr(&mut self, expr: &Expr) -> Value {
        match expr {
            Expr::Lit => (Taint::new(), None),
            Expr::Path(segs, _) => self.eval_path(segs),
            Expr::Unary(e) | Expr::Cast(e) | Expr::Try(e) => {
                let (t, ty) = self.walk_expr(e);
                (
                    t,
                    if matches!(expr, Expr::Unary(_)) {
                        ty
                    } else {
                        None
                    },
                )
            }
            Expr::Binary(_, l, r, _) => {
                let (lt, _) = self.walk_expr(l);
                let (rt, _) = self.walk_expr(r);
                (union(lt, rt), None)
            }
            Expr::Assign(_, lhs, rhs, _) => {
                let (rt, rty) = self.walk_expr(rhs);
                // Evaluate the LHS for its own findings (a secret-indexed
                // *store* leaks its address just like a load).
                let _ = self.walk_expr(lhs);
                if let Some(name) = assign_target(lhs) {
                    // Compound ops and loop-carried flow want weak updates.
                    self.weak_update(name, rt);
                    if let Some(rty) = rty {
                        if let Some(slot) =
                            self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
                        {
                            slot.1.get_or_insert(rty);
                        }
                    }
                }
                (Taint::new(), None)
            }
            Expr::Field(base, fname, _) => self.eval_field(base, fname),
            Expr::TupleField(base, _) => {
                let (t, _) = self.walk_expr(base);
                (t, None)
            }
            Expr::Index(base, idx, line) => {
                let (bt, bty) = self.walk_expr(base);
                let (it, _) = self.walk_expr(idx);
                let table = table_of(base);
                if let Some(t) = &table {
                    if let Some(def) = self.ctx.registry.tables.get(t) {
                        self.accesses.push((t.clone(), def.elem_bytes.unwrap_or(0)));
                    }
                }
                let detail = match &table {
                    Some(t) => format!("secret-dependent index into table `{t}`"),
                    None => "secret-dependent array index".to_string(),
                };
                self.finding(FindingKind::SecretIndex, *line, table, &it, detail);
                let _ = bty;
                (union(bt, it), None)
            }
            Expr::Call(callee, args, line) => self.eval_call(callee, args, *line),
            Expr::MethodCall(recv, name, _, args, line) => {
                self.eval_method(recv, name, args, *line)
            }
            Expr::Macro(name, args, line) => self.eval_macro(name, args, *line),
            Expr::Tuple(items) | Expr::Array(items) => {
                let mut t = Taint::new();
                for i in items {
                    t = union(t, self.walk_expr(i).0);
                }
                (t, None)
            }
            Expr::StructLit(path, fields, _) => {
                let mut t = Taint::new();
                for (_, v) in fields {
                    t = union(t, self.walk_expr(v).0);
                }
                let ty = path.last().map(|s| {
                    if s == "Self" {
                        self.qual().unwrap_or("Self").to_string()
                    } else {
                        s.clone()
                    }
                });
                (t, ty)
            }
            Expr::Range(a, b, _) => {
                let mut t = Taint::new();
                if let Some(a) = a {
                    t = union(t, self.walk_expr(a).0);
                }
                if let Some(b) = b {
                    t = union(t, self.walk_expr(b).0);
                }
                (t, None)
            }
            Expr::If {
                cond,
                pat,
                then_block,
                else_expr,
                line,
            } => {
                let (ct, _) = self.walk_expr(cond);
                let detail = if pat.is_some() {
                    "`if let` pattern match on secret value".to_string()
                } else {
                    "secret-dependent branch condition".to_string()
                };
                self.finding(FindingKind::SecretBranch, *line, None, &ct, detail);
                self.scopes.push(BTreeMap::new());
                if let Some(p) = pat {
                    for (name, _) in p.bindings() {
                        self.bind(&name, ct.clone(), None);
                    }
                }
                self.branch_stack.push(ct.clone());
                let then_mark = self.accesses.len();
                let (tt, tty) = self.walk_block(then_block);
                let then_fp = self.footprint(then_mark);
                self.branch_stack.pop();
                self.scopes.pop();
                let else_mark = self.accesses.len();
                self.branch_stack.push(ct.clone());
                let et = match else_expr {
                    Some(e) => self.walk_expr(e).0,
                    None => Taint::new(),
                };
                self.branch_stack.pop();
                let else_fp = self.footprint(else_mark);
                if else_expr.is_some()
                    && !then_fp.is_empty()
                    && !else_fp.is_empty()
                    && then_fp != else_fp
                {
                    self.finding(
                        FindingKind::SecretStride,
                        *line,
                        None,
                        &ct,
                        format!(
                            "secret-dependent table footprint: branch arms touch {} vs {}",
                            fmt_footprint(&then_fp),
                            fmt_footprint(&else_fp)
                        ),
                    );
                }
                (union(union(ct, tt), et), tty)
            }
            Expr::Match {
                scrutinee,
                arms,
                line,
            } => {
                let (st, _) = self.walk_expr(scrutinee);
                self.finding(
                    FindingKind::SecretBranch,
                    *line,
                    None,
                    &st,
                    "`match` on secret value".to_string(),
                );
                let mut t = st.clone();
                let mut footprints: Vec<Footprint> = Vec::new();
                for (pat, guard, body) in arms {
                    self.scopes.push(BTreeMap::new());
                    for (name, _) in pat.bindings() {
                        self.bind(&name, st.clone(), None);
                    }
                    if let Some(g) = guard {
                        let (gt, _) = self.walk_expr(g);
                        self.finding(
                            FindingKind::SecretBranch,
                            g.line().unwrap_or(*line),
                            None,
                            &gt,
                            "secret-dependent match guard".to_string(),
                        );
                    }
                    self.branch_stack.push(st.clone());
                    let mark = self.accesses.len();
                    t = union(t, self.walk_expr(body).0);
                    footprints.push(self.footprint(mark));
                    self.branch_stack.pop();
                    self.scopes.pop();
                }
                let nonempty: Vec<&Footprint> =
                    footprints.iter().filter(|f| !f.is_empty()).collect();
                if let Some(&first) = nonempty.first() {
                    if let Some(&diff) = nonempty.iter().find(|f| ***f != *first) {
                        self.finding(
                            FindingKind::SecretStride,
                            *line,
                            None,
                            &st,
                            format!(
                                "secret-dependent table footprint: `match` arms touch {} vs {}",
                                fmt_footprint(first),
                                fmt_footprint(diff)
                            ),
                        );
                    }
                }
                (t, None)
            }
            Expr::Block(b) => self.walk_block(b),
            Expr::For {
                pat,
                iter,
                body,
                line,
            } => {
                self.walk_for(pat, iter, body, *line);
                (Taint::new(), None)
            }
            Expr::While {
                cond,
                pat,
                body,
                line,
            } => {
                let (ct, _) = self.walk_expr(cond);
                self.finding(
                    FindingKind::SecretLoopBound,
                    *line,
                    None,
                    &ct,
                    "secret-dependent `while` condition".to_string(),
                );
                self.scopes.push(BTreeMap::new());
                if let Some(p) = pat {
                    for (name, _) in p.bindings() {
                        self.bind(&name, ct.clone(), None);
                    }
                }
                self.branch_stack.push(ct.clone());
                for _ in 0..2 {
                    self.walk_block(body);
                    let (ct2, _) = self.walk_expr(cond);
                    self.finding(
                        FindingKind::SecretLoopBound,
                        *line,
                        None,
                        &ct2,
                        "secret-dependent `while` condition".to_string(),
                    );
                }
                self.branch_stack.pop();
                self.scopes.pop();
                (Taint::new(), None)
            }
            Expr::Loop(body) => {
                for _ in 0..2 {
                    self.walk_block(body);
                }
                (Taint::new(), None)
            }
            Expr::Closure { params, body } => {
                // A closure evaluated as a bare value: walk with public
                // params (call sites re-walk with argument taint).
                self.scopes.push(BTreeMap::new());
                for p in params {
                    for (name, _) in p.bindings() {
                        self.bind(&name, Taint::new(), None);
                    }
                }
                let (t, _) = self.walk_expr(body);
                self.scopes.pop();
                (t, None)
            }
            Expr::Return(e, line) => {
                if let Some(e) = e {
                    let (t, _) = self.walk_expr(e);
                    self.out.ret = union(self.out.ret.clone(), t);
                }
                let bt = self.branch_taint();
                self.finding(
                    FindingKind::SecretEarlyReturn,
                    *line,
                    None,
                    &bt,
                    "secret-dependent early `return`".to_string(),
                );
                (Taint::new(), None)
            }
            Expr::Jump(e, line) => {
                if let Some(e) = e {
                    self.walk_expr(e);
                }
                let bt = self.branch_taint();
                self.finding(
                    FindingKind::SecretEarlyReturn,
                    *line,
                    None,
                    &bt,
                    "secret-dependent loop exit (`break`/`continue`)".to_string(),
                );
                (Taint::new(), None)
            }
        }
    }

    fn eval_path(&mut self, segs: &[String]) -> Value {
        if segs.len() == 1 {
            if let Some(v) = self.lookup(&segs[0]) {
                return v.clone();
            }
        }
        // Constants, unit variants, foreign paths: public.
        (Taint::new(), None)
    }

    fn eval_field(&mut self, base: &Expr, fname: &str) -> Value {
        let (bt, bty) = self.walk_expr(base);
        if let Some(t) = &bty {
            if let Some((_, fty)) = self.ctx.registry.field_of(t, fname).cloned() {
                let field_secret = self.ctx.config.secret_types.contains(t)
                    || self.ctx.config.secret_names.contains(fname)
                    || self.ctx.ty_is_secret(&fty)
                    || self.ctx.ty_is_carrier(&fty);
                let rty = self.ctx.resolve_ty(&fty, self.qual());
                if field_secret {
                    let mut t2 = bt;
                    t2.insert(Root::Secret(format!("secret field `{t}.{fname}`")));
                    return (t2, rty);
                }
                // Field-sensitive: a public field of a secret-bearing
                // struct is public (e.g. `TableGift64.layout`).
                return (Taint::new(), rty);
            }
        }
        (bt, None)
    }

    /// Splits call arguments into (evaluated values, closures walked with
    /// the given extra taint bound to their parameters).
    fn eval_args(&mut self, args: &[Expr], closure_env: &Taint) -> (Vec<Taint>, Taint) {
        let mut vals = Vec::new();
        let mut closure_taint = Taint::new();
        // Non-closure args first so closures see sibling taint.
        let mut sibling = closure_env.clone();
        for a in args {
            if !matches!(a, Expr::Closure { .. }) {
                let (t, _) = self.walk_expr(a);
                sibling = union(sibling, t.clone());
                vals.push(t);
            }
        }
        let mut vi = 0usize;
        let mut ordered = Vec::new();
        for a in args {
            if let Expr::Closure { params, body } = a {
                self.scopes.push(BTreeMap::new());
                for p in params {
                    for (name, _) in p.bindings() {
                        self.bind(&name, sibling.clone(), None);
                    }
                }
                let (t, _) = self.walk_expr(body);
                self.scopes.pop();
                closure_taint = union(closure_taint, t.clone());
                ordered.push(t);
            } else {
                ordered.push(vals[vi].clone());
                vi += 1;
            }
        }
        (ordered, closure_taint)
    }

    fn apply_summary(&mut self, callee: usize, args: Vec<Taint>, line: u32) -> Value {
        let summary = &self.summaries[callee];
        let mut ret = Taint::new();
        for root in &summary.ret {
            match root {
                Root::Secret(_) => {
                    ret.insert(root.clone());
                }
                Root::Param(f, p) if *f == callee => {
                    if let Some(at) = args.get(*p) {
                        ret.extend(at.iter().cloned());
                    }
                }
                Root::Param(..) => {
                    ret.insert(root.clone());
                }
            }
        }
        let ret_ty = summary.ret_ty.clone();
        self.out.calls.push(CallSite { callee, args, line });
        // Values of secret type are secret even if dataflow lost track.
        if let Some(t) = &ret_ty {
            if self.ctx.config.secret_types.contains(t) && ret.is_empty() {
                ret.insert(Root::Secret(format!("value of secret type `{t}`")));
            }
        }
        (ret, ret_ty)
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Value {
        let path = match callee {
            Expr::Path(segs, _) => Some(segs.clone()),
            _ => None,
        };
        let resolved = path
            .as_deref()
            .and_then(|p| self.ctx.resolve_call(self.cur_file, p, self.qual()));
        match resolved {
            Some(idx) => {
                let (ordered, _) = self.eval_args(args, &Taint::new());
                self.apply_summary(idx, ordered, line)
            }
            None => {
                if path.is_none() {
                    let _ = self.walk_expr(callee);
                }
                let (ordered, closure_taint) = self.eval_args(args, &Taint::new());
                let mut t = closure_taint;
                for a in ordered {
                    t = union(t, a);
                }
                // Tuple-struct constructors keep their type.
                let ty = path.as_ref().and_then(|p| {
                    let last = p.last()?;
                    if self.ctx.registry.structs.contains_key(last) {
                        Some(last.clone())
                    } else {
                        None
                    }
                });
                (t, ty)
            }
        }
    }

    fn eval_method(&mut self, recv: &Expr, name: &str, args: &[Expr], line: u32) -> Value {
        let (rt, rty) = self.walk_expr(recv);
        if PUBLIC_METHODS.contains(&name) {
            for a in args {
                self.walk_expr(a);
            }
            return (Taint::new(), None);
        }
        let resolved = self.ctx.resolve_method(self.cur_file, rty.as_deref(), name);
        match resolved {
            Some(idx) => {
                let (mut ordered, _) = self.eval_args(args, &rt);
                ordered.insert(0, rt);
                self.apply_summary(idx, ordered, line)
            }
            None => {
                let (ordered, closure_taint) = self.eval_args(args, &rt);
                let mut t = union(rt, closure_taint);
                for a in ordered {
                    t = union(t, a);
                }
                // Opaque mutating call: push-style methods may store tainted
                // data into the receiver.
                if let Expr::Path(segs, _) = recv {
                    if segs.len() == 1 && !t.is_empty() {
                        self.weak_update(&segs[0], t.clone());
                    }
                }
                (t, None)
            }
        }
    }

    fn eval_macro(&mut self, name: &str, args: &[Expr], line: u32) -> Value {
        let checks: usize = match name {
            "assert" | "debug_assert" | "matches" => 1,
            "assert_eq" | "assert_ne" | "debug_assert_eq" | "debug_assert_ne" => 2,
            _ => 0,
        };
        let mut t = Taint::new();
        for (i, a) in args.iter().enumerate() {
            let (at, _) = self.walk_expr(a);
            if CHECK_MACROS.contains(&name) && i < checks {
                self.finding(
                    FindingKind::SecretBranch,
                    line,
                    None,
                    &at,
                    format!("secret value checked by `{name}!`"),
                );
            }
            t = union(t, at);
        }
        (t, None)
    }

    fn walk_for(&mut self, pat: &Pat, iter: &Expr, body: &Block, line: u32) {
        // Peel iterator adapters to find the underlying collection, noting
        // `.enumerate()` (index is public) and bound-like arguments.
        let mut cur = iter;
        let mut saw_enumerate = false;
        loop {
            match cur {
                Expr::MethodCall(recv, name, _, margs, _) if name == "enumerate" => {
                    saw_enumerate = true;
                    let _ = margs;
                    cur = recv;
                }
                Expr::MethodCall(recv, name, _, margs, mline)
                    if PEEL_ADAPTERS.contains(&name.as_str())
                        || name == "take"
                        || name == "skip" =>
                {
                    if name == "take" || name == "skip" {
                        for a in margs {
                            let (at, _) = self.walk_expr(a);
                            self.finding(
                                FindingKind::SecretLoopBound,
                                *mline,
                                None,
                                &at,
                                format!("secret-dependent `{name}` bound on loop iterator"),
                            );
                        }
                    }
                    cur = recv;
                }
                _ => break,
            }
        }
        let elem_taint = match cur {
            Expr::Range(a, b, rline) => {
                let mut t = Taint::new();
                if let Some(a) = a {
                    t = union(t, self.walk_expr(a).0);
                }
                if let Some(b) = b {
                    t = union(t, self.walk_expr(b).0);
                }
                self.finding(
                    FindingKind::SecretLoopBound,
                    *rline,
                    None,
                    &t,
                    "secret-dependent loop bound".to_string(),
                );
                t
            }
            // Iterating a collection: the iteration *count* is the (public)
            // length; elements inherit the collection's taint.
            other => self.walk_expr(other).0,
        };
        let _ = line;
        self.scopes.push(BTreeMap::new());
        match (saw_enumerate, pat) {
            (true, Pat::Tuple(parts)) if parts.len() == 2 => {
                for (name, _) in parts[0].bindings() {
                    self.bind(&name, Taint::new(), None);
                }
                for (name, _) in parts[1].bindings() {
                    self.bind(&name, elem_taint.clone(), None);
                }
            }
            _ => {
                for (name, _) in pat.bindings() {
                    self.bind(&name, elem_taint.clone(), None);
                }
            }
        }
        // Two passes so loop-carried assignments reach earlier reads.
        for _ in 0..2 {
            self.walk_block(body);
        }
        self.scopes.pop();
    }
}

/// The variable a (possibly nested) assignment target ultimately writes to.
fn assign_target(lhs: &Expr) -> Option<&str> {
    match lhs {
        Expr::Path(segs, _) if segs.len() == 1 => Some(&segs[0]),
        Expr::Unary(e) | Expr::Index(e, _, _) | Expr::Field(e, _, _) | Expr::TupleField(e, _) => {
            assign_target(e)
        }
        _ => None,
    }
}

/// The const-table name an index base refers to, if any (checked against the
/// registry by the caller via `Finding::table_bytes`).
fn table_of(base: &Expr) -> Option<String> {
    match base {
        Expr::Path(segs, _) => {
            let last = segs.last()?;
            if last
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                && last.chars().any(|c| c.is_ascii_uppercase())
            {
                Some(last.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::report::{FindingKind, Severity};

    fn analyze_files(sources: &[(&str, &str)]) -> Vec<Finding> {
        let config = SecretConfig::default();
        let files: Vec<(String, SourceFile)> = sources
            .iter()
            .map(|(l, s)| (l.to_string(), parse_file(s).expect("parse")))
            .collect();
        let registry = Registry::build(&files, &config);
        analyze_crate(&files, &config, &registry)
    }

    fn analyze(src: &str) -> Vec<Finding> {
        analyze_files(&[("test.rs", src)])
    }

    #[test]
    fn secret_typed_param_flags_table_index() {
        let findings = analyze(
            "pub struct Key { words: [u16; 8] }\n\
             const T: [u8; 16] = [0; 16];\n\
             fn f(key: Key) -> u8 { T[(key.words[0] & 0xf) as usize] }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::SecretIndex);
        assert_eq!(findings[0].table.as_deref(), Some("T"));
        assert_eq!(findings[0].table_bytes, Some(16));
    }

    #[test]
    fn secret_named_param_flags_branch_and_loop_bound() {
        let findings = analyze(
            "fn f(state: u64) -> u64 {\n\
             let mut x = 0;\n\
             if state & 1 == 1 { x += 1; }\n\
             for _i in 0..state { x += 1; }\n\
             while x < state { x += 1; }\n\
             x }",
        );
        let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::SecretBranch));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == FindingKind::SecretLoopBound)
                .count(),
            2
        );
    }

    #[test]
    fn param_guard_fires_only_when_call_site_passes_taint() {
        // Indexing guarded on a parameter: cold when all callers pass
        // public data, hot when any caller passes a secret.
        let cold = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             fn lookup(i: u8) -> u8 { T[i as usize] }\n\
             fn caller() -> u8 { lookup(3) }",
        );
        assert!(cold.is_empty(), "cold guard must not fire: {cold:?}");

        let hot = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             fn lookup(i: u8) -> u8 { T[i as usize] }\n\
             fn caller(key: u64) -> u8 { lookup((key & 0xf) as u8) }",
        );
        assert_eq!(hot.len(), 1);
        assert!(hot[0].provenance.iter().any(|p| p.contains("caller")));
    }

    #[test]
    fn enumerate_index_is_public() {
        let findings = analyze(
            "const RC: [u8; 48] = [0; 48];\n\
             struct C { round_keys: Vec<u64> }\n\
             impl C { fn run(&self) -> u64 {\n\
               let mut acc = 0u64;\n\
               for (r, &rk) in self.round_keys.iter().enumerate() {\n\
                 acc ^= rk ^ u64::from(RC[r]);\n\
               }\n\
               acc } }",
        );
        assert!(
            findings.is_empty(),
            "enumerate index is public: {findings:?}"
        );
    }

    #[test]
    fn fields_are_sensitive_on_carrier_structs() {
        // A public field of a secret-bearing struct stays public; the
        // secret field taints.
        let findings = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             struct Layout { base: u64 }\n\
             struct Cipher { round_keys: Vec<u64>, layout: Layout }\n\
             impl Cipher {\n\
               fn public_path(&self) -> u64 { self.layout.base }\n\
               fn leaky(&self) -> u8 { T[(self.round_keys[0] & 0xf) as usize] }\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].function.contains("leaky"));
    }

    #[test]
    fn small_table_reports_byte_size_for_line_model() {
        let findings = analyze(
            "const W: [u8; 8] = [0; 8];\n\
             fn f(key: u64) -> u8 { W[(key & 7) as usize] }",
        );
        assert_eq!(findings[0].table_bytes, Some(8));
        // Severity itself is assigned by the report layer; default here is
        // the conservative placeholder.
        assert_eq!(findings[0].severity, Severity::Leak);
    }

    #[test]
    fn ct_allow_comment_is_attached() {
        let findings = analyze(
            "fn f(key: u64) -> u64 {\n\
             // ct-allow: variant selection is public configuration\n\
             if key & 1 == 1 { 1 } else { 0 }\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].suppressed.as_deref(),
            Some("variant selection is public configuration")
        );
    }

    #[test]
    fn cross_module_calls_are_opaque_but_propagate() {
        // `other::leak(key)` cannot be resolved: no finding is invented,
        // but the result stays tainted and flags a local branch.
        let findings = analyze(
            "fn f(key: u64) -> u64 {\n\
             let x = other::leak(key);\n\
             if x == 0 { 0 } else { 1 }\n\
             }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::SecretBranch);
    }

    #[test]
    fn assert_macros_are_branch_checks() {
        let findings = analyze("fn f(key: u64) { assert!(key != 0); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::SecretBranch);
        let public = analyze("fn f(n: usize) { assert!(n < 28); }");
        assert!(public.is_empty());
    }

    #[test]
    fn match_on_secret_enum_flags() {
        let findings = analyze(
            "pub enum PresentKey { K80(u128), K128(u128) }\n\
             const T: [u8; 16] = [0; 16];\n\
             fn f(key: PresentKey) -> u8 {\n\
             match key { PresentKey::K80(k) => T[(k & 0xf) as usize], PresentKey::K128(k) => (k & 1) as u8 }\n\
             }",
        );
        let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::SecretBranch));
        assert!(kinds.contains(&FindingKind::SecretIndex));
    }

    #[test]
    fn method_resolution_uses_receiver_type() {
        // Two methods named `run`; only the secret-carrying one's table
        // access should fire, resolved through the local binding's type.
        let findings = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             struct A { round_keys: Vec<u64> }\n\
             struct B { n: u64 }\n\
             impl A { fn run(&self) -> u8 { T[(self.round_keys[0] & 0xf) as usize] } }\n\
             impl B { fn run(&self) -> u8 { T[(self.n & 0xf) as usize] } }\n\
             fn go(a: A) -> u8 { a.run() }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].function, "A::run");
    }

    #[test]
    fn secret_store_index_flags() {
        let findings = analyze(
            "fn f(key: u64) -> [u8; 16] {\n\
             let mut t = [0u8; 16];\n\
             t[(key & 0xf) as usize] = 1;\n\
             t }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::SecretIndex);
    }

    #[test]
    fn cross_module_free_call_carries_taint_interprocedurally() {
        // `lookup` lives in another module; the call still resolves and the
        // guarded table index fires with cross-file provenance.
        let findings = analyze_files(&[
            (
                "tables.rs",
                "const T: [u8; 16] = [0; 16];\n\
                 pub fn lookup(i: u8) -> u8 { T[i as usize] }",
            ),
            (
                "cipher.rs",
                "fn round(key: u64) -> u8 { crate::tables::lookup((key & 0xf) as u8) }",
            ),
        ]);
        // Paths like `crate::tables::lookup` have >2 segments and stay
        // opaque by design; a bare cross-module name resolves.
        let resolved = analyze_files(&[
            (
                "tables.rs",
                "const T: [u8; 16] = [0; 16];\n\
                 pub fn lookup(i: u8) -> u8 { T[i as usize] }",
            ),
            (
                "cipher.rs",
                "fn round(key: u64) -> u8 { lookup((key & 0xf) as u8) }",
            ),
        ]);
        assert!(
            findings.is_empty(),
            "3-segment paths stay opaque: {findings:?}"
        );
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].file, "tables.rs");
        assert_eq!(resolved[0].kind, FindingKind::SecretIndex);
        assert!(
            resolved[0]
                .provenance
                .iter()
                .any(|p| p.contains("cipher.rs")),
            "provenance crosses modules: {:?}",
            resolved[0].provenance
        );
    }

    #[test]
    fn cross_module_method_resolves_through_receiver_type() {
        let findings = analyze_files(&[
            (
                "core.rs",
                "const T: [u8; 16] = [0; 16];\n\
                 pub struct Sbox { n: u64 }\n\
                 impl Sbox { pub fn apply(&self, i: u8) -> u8 { T[i as usize] } }",
            ),
            (
                "front.rs",
                "fn go(s: Sbox, key: u64) -> u8 { s.apply((key & 0xf) as u8) }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "core.rs");
        assert_eq!(findings[0].function, "Sbox::apply");
    }

    #[test]
    fn secret_early_return_fires_under_tainted_branch() {
        let findings = analyze(
            "fn f(key: u64) -> u64 {\n\
             if key & 1 == 1 { return 0; }\n\
             1 }",
        );
        let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
        assert!(
            kinds.contains(&FindingKind::SecretEarlyReturn),
            "{findings:?}"
        );
        // The same shape under a public guard is clean.
        let public = analyze(
            "fn f(n: usize) -> u64 {\n\
             if n > 3 { return 0; }\n\
             1 }",
        );
        assert!(public.is_empty(), "{public:?}");
    }

    #[test]
    fn secret_loop_exit_fires_on_break() {
        let findings = analyze(
            "fn f(key: u64) -> u64 {\n\
             let mut acc = 0u64;\n\
             for i in 0..64 {\n\
               acc += 1;\n\
               if (key >> i) & 1 == 1 { break; }\n\
             }\n\
             acc }",
        );
        let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
        assert!(
            kinds.contains(&FindingKind::SecretEarlyReturn),
            "{findings:?}"
        );
    }

    #[test]
    fn secret_stride_fires_when_branch_arms_touch_different_tables() {
        // Both indexes are public; the *footprint* differs by branch: one
        // arm reads a 1-byte-stride table, the other an 8-byte-stride one.
        let findings = analyze(
            "const NARROW: [u8; 16] = [0; 16];\n\
             const WIDE: [u64; 16] = [0; 16];\n\
             fn f(key: u64, i: usize) -> u64 {\n\
             if key & 1 == 1 { u64::from(NARROW[i & 15]) } else { WIDE[i & 15] }\n\
             }",
        );
        let stride: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::SecretStride)
            .collect();
        assert_eq!(stride.len(), 1, "{findings:?}");
        assert!(stride[0].detail.contains("NARROW"), "{}", stride[0].detail);
        assert!(stride[0].detail.contains("8B"), "{}", stride[0].detail);
    }

    #[test]
    fn same_footprint_branch_arms_do_not_fire_stride() {
        let findings = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             fn f(key: u64, i: usize) -> u8 {\n\
             if key & 1 == 1 { T[i & 7] } else { T[(i >> 1) & 7] }\n\
             }",
        );
        assert!(
            findings.iter().all(|f| f.kind != FindingKind::SecretStride),
            "{findings:?}"
        );
    }

    #[test]
    fn match_arms_with_divergent_footprints_fire_stride() {
        let findings = analyze(
            "const A: [u8; 16] = [0; 16];\n\
             const B: [u32; 16] = [0; 16];\n\
             fn f(key: u64, i: usize) -> u32 {\n\
             match key & 1 { 0 => u32::from(A[i & 15]), _ => B[i & 15] }\n\
             }",
        );
        assert!(
            findings.iter().any(|f| f.kind == FindingKind::SecretStride),
            "{findings:?}"
        );
    }

    #[test]
    fn ct_secret_mark_taints_let_binding() {
        let findings = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             fn f(raw: u64) -> u8 {\n\
             // ct-secret: session nonce half\n\
             let nonce = raw;\n\
             T[(nonce & 0xf) as usize] }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::SecretIndex);
        assert!(findings[0]
            .provenance
            .iter()
            .any(|p| p.contains("ct-secret")));
    }

    #[test]
    fn ct_secret_mark_on_fn_taints_params() {
        let findings = analyze(
            "const T: [u8; 16] = [0; 16];\n\
             // ct-secret\n\
             fn f(material: u64) -> u8 { T[(material & 0xf) as usize] }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .provenance
            .iter()
            .any(|p| p.contains("marked `// ct-secret`")));
    }

    #[test]
    fn custom_config_drives_secret_roots() {
        // No GIFT names anywhere: the config alone decides what is secret.
        let config = SecretConfig {
            secret_types: ["RectKey".to_string()].into_iter().collect(),
            secret_names: ["seed_material".to_string()].into_iter().collect(),
        };
        let src = "pub struct RectKey { w: u64 }\n\
                   const S: [u8; 16] = [0; 16];\n\
                   fn f(k: RectKey) -> u8 { S[(k.w & 0xf) as usize] }\n\
                   fn g(seed_material: u64) -> u8 { S[(seed_material & 0xf) as usize] }\n\
                   fn h(key: u64) -> u8 { S[(key & 0xf) as usize] }";
        let files = vec![("r.rs".to_string(), parse_file(src).expect("parse"))];
        let registry = Registry::build(&files, &config);
        let findings = analyze_crate(&files, &config, &registry);
        // `key` is NOT secret under this config; `RectKey` and
        // `seed_material` are.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.function != "h"));
    }
}
