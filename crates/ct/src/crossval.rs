//! Cross-validation of static verdicts against empirical leakage.
//!
//! The static analyzer claims which implementations leak; the PR 2 profiler
//! (`grinch-obs::leakage`) measures mutual information I(pattern; line)
//! between forced key-nibble patterns and observed S-box cache lines on a
//! real telemetry trace. The two must agree:
//!
//! * static **leak** verdict ⇒ the trace should show MI well above zero
//!   (the secret-indexed lookup is empirically observable);
//! * static **clean** (or line-safe at the trace's granularity) ⇒ MI ≈ 0.
//!
//! A disagreement in either direction is a bug — in the analyzer, in the
//! profiler, or in the implementation under test — which is exactly why the
//! subcommand exists.
//!
//! The check optionally takes a *second* trace captured on a defended
//! platform (e.g. the arena's rekeyed `KeyedRemap` cache — see
//! `grinch-arena trace`). The static verdict is a property of the *source*
//! and does not change under a hardware defense; what changes is the
//! empirical channel. The joined report then also states the MI drop
//! (undefended minus defended) and whether the defense pushed the channel
//! below the leak threshold.

use crate::report::{json_string, Report, Severity};
use grinch_obs::leakage::stage_leakage;
use grinch_telemetry::Snapshot;

/// Joined static/empirical verdict for one implementation file.
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// File label the static verdict is for.
    pub file: String,
    /// True if the file has at least one unsuppressed `leak`-severity
    /// finding at the report's granularity.
    pub static_leak: bool,
    /// Unsuppressed finding count (any severity).
    pub static_findings: usize,
    /// Highest per-stage I(pattern; line) in bits seen in the trace.
    pub max_mi_bits: f64,
    /// Number of attack stages with joint counters in the trace.
    pub stages: usize,
    /// MI threshold (bits) above which the trace counts as leaking.
    pub threshold: f64,
    /// Empirical side of a defended-platform trace, when one was supplied.
    pub defended: Option<DefendedCheck>,
}

/// The empirical verdict for the defended-platform trace.
#[derive(Clone, Copy, Debug)]
pub struct DefendedCheck {
    /// Highest per-stage I(pattern; line) in bits under the defense.
    pub max_mi_bits: f64,
    /// Attack stages with joint counters in the defended trace.
    pub stages: usize,
}

impl CrossCheck {
    /// True if the empirical side saw leakage.
    pub fn empirical_leak(&self) -> bool {
        self.max_mi_bits > self.threshold
    }

    /// True if static and empirical verdicts agree. The defended trace has
    /// no say here: a hardware defense changes the channel, not the source.
    pub fn agrees(&self) -> bool {
        self.static_leak == self.empirical_leak()
    }

    /// MI lost to the defense (undefended minus defended), when a defended
    /// trace was supplied.
    pub fn mi_drop_bits(&self) -> Option<f64> {
        self.defended.map(|d| self.max_mi_bits - d.max_mi_bits)
    }

    /// Whether the defense pushed the empirical channel below the leak
    /// threshold, when a defended trace was supplied.
    pub fn defense_effective(&self) -> Option<bool> {
        self.defended.map(|d| d.max_mi_bits <= self.threshold)
    }

    /// One-line human verdict (two lines with a defended trace).
    pub fn verdict(&self) -> String {
        let s = if self.static_leak { "leak" } else { "clean" };
        let e = if self.empirical_leak() {
            "leaks"
        } else {
            "no leakage"
        };
        let a = if self.agrees() { "AGREE" } else { "DISAGREE" };
        let mut line = format!(
            "{}: static says {s} ({} finding(s)), trace says {e} \
             (max MI {:.4} bits over {} stage(s), threshold {}) => {a}",
            self.file, self.static_findings, self.max_mi_bits, self.stages, self.threshold
        );
        if let Some(d) = self.defended {
            let effect = if self.defense_effective() == Some(true) {
                "defense EFFECTIVE"
            } else {
                "defense INEFFECTIVE"
            };
            let _ = std::fmt::Write::write_fmt(
                &mut line,
                format_args!(
                    "\n{}: defended trace max MI {:.4} bits over {} stage(s), \
                     drop {:.4} bits => {effect}",
                    self.file,
                    d.max_mi_bits,
                    d.stages,
                    self.mi_drop_bits().unwrap_or(0.0)
                ),
            );
        }
        line
    }

    /// Stable JSON rendering of the joined verdict. The defended-trace
    /// fields are additive: they only appear when a defended trace was
    /// supplied, so v1 consumers keep parsing.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"grinch-ct-crossval/v1\",\n  \"file\": {},\n  \
             \"static_leak\": {},\n  \"static_findings\": {},\n  \
             \"max_mi_bits\": {:.6},\n  \"stages\": {},\n  \
             \"threshold\": {},\n  \"empirical_leak\": {},\n  \"agree\": {}",
            json_string(&self.file),
            self.static_leak,
            self.static_findings,
            self.max_mi_bits,
            self.stages,
            self.threshold,
            self.empirical_leak(),
            self.agrees()
        );
        if let Some(d) = self.defended {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\n  \"defended_max_mi_bits\": {:.6},\n  \
                     \"defended_stages\": {},\n  \"mi_drop_bits\": {:.6},\n  \
                     \"defense_effective\": {}",
                    d.max_mi_bits,
                    d.stages,
                    self.mi_drop_bits().unwrap_or(0.0),
                    self.defense_effective() == Some(true)
                ),
            );
        }
        out.push_str("\n}\n");
        out
    }

    /// Attaches the empirical verdict of a defended-platform trace.
    pub fn with_defended_trace(mut self, snapshot: &Snapshot) -> Self {
        let stages = stage_leakage(snapshot);
        self.defended = Some(DefendedCheck {
            max_mi_bits: stages.iter().map(|s| s.mi_bits()).fold(0.0f64, f64::max),
            stages: stages.len(),
        });
        self
    }
}

/// Joins the static report for `impl_file` with the per-stage MI estimates
/// extracted from `snapshot`'s `attack.stage<r>.joint.*` counters.
pub fn cross_check(
    report: &Report,
    impl_file: &str,
    snapshot: &Snapshot,
    threshold: f64,
) -> CrossCheck {
    let findings = report.active_for_file(impl_file);
    let static_leak = findings.iter().any(|f| f.severity == Severity::Leak);
    let stages = stage_leakage(snapshot);
    let max_mi_bits = stages.iter().map(|s| s.mi_bits()).fold(0.0f64, f64::max);
    CrossCheck {
        file: impl_file.to_string(),
        static_leak,
        static_findings: findings.len(),
        max_mi_bits,
        stages: stages.len(),
        threshold,
        defended: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, FindingKind, Report};
    use grinch_telemetry::Telemetry;

    fn leaky_report() -> Report {
        Report::new(
            vec![Finding {
                file: "table.rs".to_string(),
                line: 28,
                kind: FindingKind::SecretIndex,
                function: "sbox_lookup".to_string(),
                table: Some("GIFT_SBOX".to_string()),
                table_bytes: Some(16),
                severity: Severity::Leak,
                provenance: Vec::new(),
                suppressed: None,
                detail: "d".to_string(),
            }],
            vec!["table.rs".to_string(), "bitwise.rs".to_string()],
            8,
        )
    }

    /// A synthetic trace where the observed line fully determines the
    /// pattern (maximal MI) or is constant (zero MI).
    fn trace(leaky: bool) -> Snapshot {
        let tel = Telemetry::new();
        for p in 0..4u8 {
            let line = if leaky { p as usize } else { 0 };
            tel.counter_add(&format!("attack.stage0.joint.p{p:x}.l{line}"), 32);
        }
        tel.snapshot()
    }

    #[test]
    fn leaky_static_and_leaky_trace_agree() {
        let check = cross_check(&leaky_report(), "table.rs", &trace(true), 0.05);
        assert!(check.static_leak);
        assert!(check.empirical_leak());
        assert!(check.agrees());
        assert!(check.max_mi_bits > 1.9, "4 distinct lines => ~2 bits");
    }

    #[test]
    fn clean_static_and_flat_trace_agree() {
        let check = cross_check(&leaky_report(), "bitwise.rs", &trace(false), 0.05);
        assert!(!check.static_leak);
        assert!(!check.empirical_leak());
        assert!(check.agrees());
    }

    #[test]
    fn disagreement_is_reported() {
        // Static says table.rs leaks, but the trace is flat: disagree.
        let check = cross_check(&leaky_report(), "table.rs", &trace(false), 0.05);
        assert!(!check.agrees());
        assert!(check.verdict().contains("DISAGREE"));
    }

    #[test]
    fn json_has_schema_and_agreement() {
        let check = cross_check(&leaky_report(), "table.rs", &trace(true), 0.05);
        let json = check.to_json();
        assert!(json.contains("\"schema\": \"grinch-ct-crossval/v1\""));
        assert!(json.contains("\"agree\": true"));
        assert!(
            !json.contains("defended"),
            "no defended fields without a defended trace"
        );
    }

    #[test]
    fn defended_trace_reports_the_mi_drop() {
        let check = cross_check(&leaky_report(), "table.rs", &trace(true), 0.05)
            .with_defended_trace(&trace(false));
        assert!(check.agrees(), "defense must not flip the static verdict");
        let drop = check.mi_drop_bits().expect("defended trace attached");
        assert!(drop > 1.9, "flattened channel drops ~2 bits, got {drop}");
        assert_eq!(check.defense_effective(), Some(true));
        let verdict = check.verdict();
        assert!(verdict.contains("defense EFFECTIVE"), "{verdict}");
        let json = check.to_json();
        assert!(
            json.contains("\"defended_max_mi_bits\": 0.000000"),
            "{json}"
        );
        assert!(json.contains("\"defense_effective\": true"), "{json}");
    }

    #[test]
    fn ineffective_defense_is_called_out() {
        // The "defended" trace leaks exactly like the undefended one — a
        // static KeyedRemap against Flush+Reload, say.
        let check = cross_check(&leaky_report(), "table.rs", &trace(true), 0.05)
            .with_defended_trace(&trace(true));
        assert_eq!(check.defense_effective(), Some(false));
        assert_eq!(check.mi_drop_bits(), Some(0.0));
        assert!(check.verdict().contains("defense INEFFECTIVE"));
    }
}
