//! SARIF 2.1.0 rendering of a [`Report`], so CI can publish findings as
//! inline annotations via `github/codeql-action/upload-sarif`.
//!
//! The mapping is deliberately small and stable:
//!
//! * one `run` per report, `tool.driver.name` = `grinch-ct`, one
//!   `tool.driver.rules` entry per [`FindingKind`] that appears;
//! * one `result` per finding with `ruleId` = the kind's stable string,
//!   `level` from severity (`leak` → `error`, `hazard` → `warning`,
//!   `line-safe` → `note`), and a `physicalLocation` carrying the file and
//!   1-based line;
//! * suppressed findings keep their result but gain a `suppressions` entry
//!   (`kind: "inSource"`), which GitHub hides by default — exactly the
//!   semantics of `// ct-allow:` / `// det-allow:`.
//!
//! Rendering is hand-rolled (same zero-dependency policy as the JSON
//! report) and deterministic: rules sorted by id, results in report order.

use crate::report::{json_string, Finding, FindingKind, Report, Severity};
use std::collections::BTreeMap;

/// Human-oriented one-line description per rule, shown by SARIF viewers.
fn rule_description(kind: FindingKind) -> &'static str {
    match kind {
        FindingKind::SecretIndex => "Secret-dependent array or table index",
        FindingKind::SecretBranch => "Secret-dependent branch condition",
        FindingKind::SecretLoopBound => "Secret-dependent loop trip count",
        FindingKind::SecretEarlyReturn => "Secret-dependent early return or loop exit",
        FindingKind::SecretStride => "Secret-dependent table access footprint",
        FindingKind::HashOrderEmission => "HashMap/HashSet iteration order reaches serialization",
        FindingKind::UnseededRng => "RNG constructed from OS entropy",
        FindingKind::WallClockArtifact => "Wall-clock value stored into an artifact struct",
        FindingKind::ThreadOrdering => "Thread identity feeds aggregation",
    }
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Leak => "error",
        Severity::Hazard => "warning",
        Severity::LineSafe => "note",
    }
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    // Rules: one entry per kind that appears, sorted by stable id.
    let mut kinds: BTreeMap<&'static str, FindingKind> = BTreeMap::new();
    for f in &report.findings {
        kinds.insert(f.kind.as_str(), f.kind);
    }
    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"grinch-ct\",\n");
    out.push_str(&format!(
        "          \"informationUri\": \"https://example.invalid/grinch-ct\",\n          \"rules\": [{}]\n",
        kinds
            .iter()
            .map(|(id, kind)| format!(
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_string(id),
                json_string(rule_description(*kind))
            ))
            .collect::<Vec<_>>()
            .join(",")
            + if kinds.is_empty() { "" } else { "\n          " }
    ));
    out.push_str("        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        ");
        out.push_str(&result_json(f));
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn result_json(f: &Finding) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"ruleId\": {}, ", json_string(f.kind.as_str())));
    out.push_str(&format!("\"level\": {}, ", json_string(level(f.severity))));
    let message = match f.provenance.first() {
        Some(root) => format!("{} ({}) [{}]", f.detail, f.function, root),
        None => format!("{} ({})", f.detail, f.function),
    };
    out.push_str(&format!(
        "\"message\": {{\"text\": {}}}, ",
        json_string(&message)
    ));
    out.push_str(&format!(
        "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]",
        json_string(&f.file),
        f.line
    ));
    if let Some(reason) = &f.suppressed {
        out.push_str(&format!(
            ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}]",
            json_string(reason)
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;

    fn sample() -> Report {
        let f = |kind: FindingKind, suppressed: Option<&str>| Finding {
            file: "src/table.rs".to_string(),
            line: 28,
            kind,
            function: "f".to_string(),
            table: None,
            table_bytes: None,
            severity: Severity::Leak,
            provenance: vec!["secret `key`".to_string()],
            suppressed: suppressed.map(str::to_string),
            detail: "secret-dependent index".to_string(),
        };
        Report::new(
            vec![
                f(FindingKind::SecretIndex, None),
                f(FindingKind::SecretBranch, Some("reviewed")),
            ],
            vec!["src/table.rs".to_string()],
            8,
        )
    }

    #[test]
    fn sarif_has_required_shape() {
        let sarif = to_sarif(&sample());
        // Required 2.1.0 fields, the shape CI's upload step depends on.
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"runs\": ["));
        assert!(sarif.contains("\"driver\": {"));
        assert!(sarif.contains("\"name\": \"grinch-ct\""));
        assert!(sarif.contains("\"rules\": ["));
        assert!(sarif.contains("\"id\": \"secret-index\""));
        assert!(sarif.contains("\"results\": ["));
        assert!(sarif.contains("\"locations\": [{\"physicalLocation\""));
        assert!(sarif.contains("\"startLine\": 28"));
    }

    #[test]
    fn severity_maps_to_sarif_levels() {
        let mut r = sample();
        r.findings[0].severity = Severity::LineSafe;
        let sarif = to_sarif(&r);
        assert!(sarif.contains("\"level\": \"note\""));
        assert!(sarif.contains("\"level\": \"error\""));
    }

    #[test]
    fn suppressed_findings_carry_suppressions() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"suppressions\": [{\"kind\": \"inSource\""));
        assert!(sarif.contains("\"justification\": \"reviewed\""));
    }

    #[test]
    fn empty_report_is_valid() {
        let r = Report::new(Vec::new(), vec!["x.rs".to_string()], 8);
        let sarif = to_sarif(&r);
        assert!(sarif.contains("\"rules\": []"));
        assert!(sarif.contains("\"results\": []"));
        assert_eq!(sarif, to_sarif(&r), "deterministic");
    }
}
