//! Crate-level call graph: global function ids and cross-module resolution.
//!
//! Every function in every parsed file gets a **global id** (files in input
//! order, functions in source order within a file). Resolution is two-tier:
//! the current module is searched first with exactly the module-local rules
//! the analyzer has always used, and only an *unambiguous* crate-wide match
//! is accepted beyond that. Ambiguity degrades to opaque (taint propagates,
//! no findings are invented), never to a guess — the same discipline the
//! module-local analyzer applies to unknown calls.

use crate::ast::SourceFile;
use std::collections::BTreeMap;

/// Per-function metadata the resolver needs without touching the AST.
#[derive(Clone, Debug)]
struct FnMeta {
    name: String,
    qual: Option<String>,
    has_self: bool,
}

/// The crate-wide function table and name indexes.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Global id -> `(file index, function index within that file)`.
    pub fns: Vec<(usize, usize)>,
    /// File index -> global ids of its functions, in source order.
    pub by_file: Vec<Vec<usize>>,
    metas: Vec<FnMeta>,
    /// Free functions by bare name.
    free: BTreeMap<String, Vec<usize>>,
    /// Associated functions and methods by `(impl type, name)`.
    assoc: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over all parsed files.
    pub fn build(files: &[(String, SourceFile)]) -> Self {
        let mut g = CallGraph::default();
        for (file_idx, (_, module)) in files.iter().enumerate() {
            let mut ids = Vec::with_capacity(module.functions.len());
            for (local_idx, f) in module.functions.iter().enumerate() {
                let gid = g.fns.len();
                g.fns.push((file_idx, local_idx));
                g.metas.push(FnMeta {
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    has_self: f.params.first().is_some_and(|p| p.is_self),
                });
                match &f.qual {
                    None => g.free.entry(f.name.clone()).or_default().push(gid),
                    Some(q) => g
                        .assoc
                        .entry((q.clone(), f.name.clone()))
                        .or_default()
                        .push(gid),
                }
                ids.push(gid);
            }
            g.by_file.push(ids);
        }
        g
    }

    /// Number of functions across the crate.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the crate defines no functions at all.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Resolves a bare call `name(...)`: the current module first, then a
    /// unique crate-wide free function.
    pub fn resolve_free(&self, cur_file: usize, name: &str) -> Option<usize> {
        if let Some(&gid) = self.by_file[cur_file]
            .iter()
            .find(|&&g| self.metas[g].qual.is_none() && self.metas[g].name == name)
        {
            return Some(gid);
        }
        match self.free.get(name).map(Vec::as_slice) {
            Some([single]) => Some(*single),
            _ => None,
        }
    }

    /// Resolves `Type::name(...)`: the current module first, then a unique
    /// crate-wide associated function on that type.
    pub fn resolve_assoc(&self, cur_file: usize, ty: &str, name: &str) -> Option<usize> {
        if let Some(&gid) = self.by_file[cur_file]
            .iter()
            .find(|&&g| self.metas[g].qual.as_deref() == Some(ty) && self.metas[g].name == name)
        {
            return Some(gid);
        }
        match self
            .assoc
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
        {
            Some([single]) => Some(*single),
            _ => None,
        }
    }

    /// Resolves `recv.name(...)`. With a known receiver type the search is
    /// by impl type (module first, then unique crate-wide). Without one, the
    /// call resolves only if the current module has exactly one `self`-taking
    /// method of that name — cross-module method resolution always requires
    /// the receiver type.
    pub fn resolve_method(
        &self,
        cur_file: usize,
        recv_ty: Option<&str>,
        name: &str,
    ) -> Option<usize> {
        let local: Vec<usize> = self.by_file[cur_file]
            .iter()
            .copied()
            .filter(|&g| self.metas[g].name == name && self.metas[g].has_self)
            .collect();
        match recv_ty {
            Some(t) => {
                if let Some(&gid) = local
                    .iter()
                    .find(|&&g| self.metas[g].qual.as_deref() == Some(t))
                {
                    return Some(gid);
                }
                let global: Vec<usize> = self
                    .assoc
                    .get(&(t.to_string(), name.to_string()))
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&g| self.metas[g].has_self)
                            .collect()
                    })
                    .unwrap_or_default();
                match global.as_slice() {
                    [single] => Some(*single),
                    _ => None,
                }
            }
            None => {
                if local.len() == 1 {
                    Some(local[0])
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn graph(files: &[(&str, &str)]) -> (Vec<(String, SourceFile)>, CallGraph) {
        let parsed: Vec<(String, SourceFile)> = files
            .iter()
            .map(|(l, s)| (l.to_string(), parse_file(s).expect("parse")))
            .collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    #[test]
    fn module_local_resolution_wins_over_cross_module() {
        let (_, g) = graph(&[
            ("a.rs", "fn helper() {}\nfn go() { helper(); }"),
            ("b.rs", "fn helper() {}"),
        ]);
        // From a.rs, `helper` is the local one (global id 0), even though
        // b.rs also defines one.
        assert_eq!(g.resolve_free(0, "helper"), Some(0));
        assert_eq!(g.resolve_free(1, "helper"), Some(2));
    }

    #[test]
    fn unique_cross_module_free_fn_resolves() {
        let (_, g) = graph(&[
            ("a.rs", "fn go() { expand(); }"),
            ("b.rs", "fn expand() {}"),
        ]);
        assert_eq!(g.resolve_free(0, "expand"), Some(1));
    }

    #[test]
    fn ambiguous_cross_module_call_stays_opaque() {
        let (_, g) = graph(&[
            ("a.rs", "fn go() {}"),
            ("b.rs", "fn expand() {}"),
            ("c.rs", "fn expand() {}"),
        ]);
        assert_eq!(g.resolve_free(0, "expand"), None);
    }

    #[test]
    fn cross_module_methods_need_a_receiver_type() {
        let (_, g) = graph(&[
            ("a.rs", "fn go() {}"),
            ("b.rs", "struct C;\nimpl C { fn run(&self) {} }"),
        ]);
        assert_eq!(g.resolve_method(0, Some("C"), "run"), Some(1));
        assert_eq!(g.resolve_method(0, None, "run"), None);
    }

    #[test]
    fn assoc_fns_resolve_by_type() {
        let (_, g) = graph(&[
            ("a.rs", "fn go() {}"),
            ("b.rs", "struct C;\nimpl C { fn new() -> C { C } }"),
        ]);
        assert_eq!(g.resolve_assoc(0, "C", "new"), Some(1));
        assert_eq!(g.resolve_assoc(0, "D", "new"), None);
    }
}
