//! Byte-identity hazard lint (`grinch-ct determinism`).
//!
//! The repo's most load-bearing invariant is that exported artifacts —
//! `grinch-arena/v1` matrices, JSONL traces, ledger records — are
//! byte-identical under any worker count or machine. That property is
//! enforced dynamically by tests; this pass enforces it statically by
//! flagging the four hazard shapes that have actually broken it in the
//! wild:
//!
//! * **hash-order-emission** — `HashMap`/`HashSet` iteration order reaching
//!   serialization (`write!`-family sinks, `push_str`, order-dependent
//!   terminals like `fold`/`sum` over float accumulation);
//! * **unseeded-rng** — RNG constructed from OS entropy (`thread_rng`,
//!   `from_entropy`, `from_os_rng`, `OsRng`) instead of the blessed seeded
//!   paths (`new_seeded`, `seed_from_u64`, `from_seed`, splitmix64);
//! * **wall-clock-artifact** — `Instant`/`SystemTime` values stored into
//!   struct literals (exported artifact structs must derive time from the
//!   simulated clock; the dedicated wall block is `// det-allow:`-excepted);
//! * **thread-ordering** — `thread::current().id()` feeding computation
//!   (aggregation must happen in the delta-folding seams, keyed by worker
//!   index, never by thread identity).
//!
//! The lint is module-local and deliberately shallow: it trades recall at
//! function boundaries for a near-zero false-positive rate, because its
//! verdict gates CI. Suppress a reviewed site with `// det-allow: <reason>`
//! on or above the line, or with a `[determinism] allow` entry in
//! `ct-config.toml`.

use crate::ast::{Block, Expr, Func, SourceFile, Stmt};
use crate::report::{Finding, FindingKind, Severity};
use std::collections::BTreeMap;

/// Iteration methods that expose a collection's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Adapters that forward an iterator's (unordered) order.
const ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "enumerate",
    "zip",
    "chain",
    "take",
    "skip",
    "step_by",
    "peekable",
    "inspect",
    "copied",
    "cloned",
    "by_ref",
];

/// Terminals whose result does not depend on iteration order.
const SAFE_TERMINALS: &[&str] = &[
    "count",
    "all",
    "any",
    "contains",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "len",
    "is_empty",
    "find",
    "position",
];

/// Terminals whose result (or effect order) depends on iteration order.
const HAZARD_TERMINALS: &[&str] = &["sum", "product", "fold", "reduce", "for_each"];

/// Methods that append into an emission buffer.
const SINK_METHODS: &[&str] = &["push_str", "write_all", "write_fmt"];

/// Macros that emit formatted output.
const SINK_MACROS: &[&str] = &["write", "writeln", "print", "println", "eprint", "eprintln"];

/// In-place sorts that launder an unordered collection.
const SORTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// RNG constructors that pull OS entropy.
const UNSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// How a value relates to hash-iteration order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
enum Order {
    /// No known order dependence.
    #[default]
    Plain,
    /// An unordered collection: iterating it is nondeterministic.
    Coll,
    /// An iterator currently yielding in nondeterministic order.
    Stream,
    /// A value whose identity at this point came from unordered iteration.
    Elem,
}

/// Lint state of one expression value.
#[derive(Clone, Copy, Debug, Default)]
struct St {
    ord: Order,
    /// Derived from `Instant::now`/`SystemTime::now`.
    wall: bool,
    /// Is (derived from) `thread::current()`.
    thread: bool,
}

impl St {
    fn join(self, other: St) -> St {
        St {
            ord: self.ord.max(other.ord),
            wall: self.wall || other.wall,
            thread: self.thread || other.thread,
        }
    }

    /// Order taint that matters at a sink: the element or the stream itself.
    fn emits_unordered(self) -> bool {
        matches!(self.ord, Order::Stream | Order::Elem)
    }
}

/// True if the type text names an unordered std collection.
fn ty_is_unordered(ty: &str) -> bool {
    ty_words(ty).any(|w| w == "HashMap" || w == "HashSet")
}

/// True if the type text names an ordered (sorted) collection.
fn ty_is_ordered(ty: &str) -> bool {
    ty_words(ty).any(|w| w == "BTreeMap" || w == "BTreeSet")
}

fn ty_words(ty: &str) -> impl Iterator<Item = &str> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
}

/// Runs the lint over parsed files, applying the config allowlist, and
/// returns findings sorted per file by (line, kind, detail).
pub fn lint_files(files: &[(String, SourceFile)], allow: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (label, module) in files {
        findings.extend(lint_module(label, module));
    }
    for f in &mut findings {
        if f.suppressed.is_some() {
            continue;
        }
        for entry in allow {
            let (suffix, kind) = match entry.rsplit_once(':') {
                Some((s, k)) => (s, Some(k)),
                None => (entry.as_str(), None),
            };
            let file_match = f.file == suffix || f.file.ends_with(suffix);
            let kind_match = match kind {
                Some(k) => k == f.kind.as_str(),
                None => true,
            };
            if file_match && kind_match {
                f.suppressed = Some(format!("ct-config.toml allow: {entry}"));
                break;
            }
        }
    }
    findings
}

/// Lints one parsed file.
pub fn lint_module(label: &str, module: &SourceFile) -> Vec<Finding> {
    let mut raw: Vec<(u32, FindingKind, String, String)> = Vec::new();
    for func in &module.functions {
        let mut w = DetWalker {
            func,
            scopes: vec![BTreeMap::new()],
            hash_loop_depth: 0,
            out: &mut raw,
        };
        for p in &func.params {
            let st = St {
                ord: if ty_is_unordered(&p.ty) {
                    Order::Coll
                } else {
                    Order::Plain
                },
                ..St::default()
            };
            if let Some(name) = &p.name {
                w.bind(name, st);
            }
        }
        w.walk_block(&func.body);
    }
    raw.sort_by(|a, b| (a.0, a.1, &a.3).cmp(&(b.0, b.1, &b.3)));
    raw.dedup_by(|a, b| (a.0, a.1, &a.3) == (b.0, b.1, &b.3));
    raw.into_iter()
        .map(|(line, kind, function, detail)| {
            let suppressed = module
                .det_allows
                .get(&line)
                .or_else(|| module.det_allows.get(&line.saturating_sub(1)))
                .cloned();
            Finding {
                file: label.to_string(),
                line,
                kind,
                function,
                table: None,
                table_bytes: None,
                severity: Severity::Hazard,
                provenance: Vec::new(),
                suppressed,
                detail,
            }
        })
        .collect()
}

struct DetWalker<'a> {
    func: &'a Func,
    scopes: Vec<BTreeMap<String, St>>,
    /// How many enclosing loops iterate an unordered collection. Any sink
    /// inside such a loop emits in iteration order — flagged even when the
    /// element identifiers hide inside `format!`-style inline captures
    /// (string literals the AST cannot see into).
    hash_loop_depth: usize,
    out: &'a mut Vec<(u32, FindingKind, String, String)>,
}

impl DetWalker<'_> {
    fn bind(&mut self, name: &str, st: St) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), st);
    }

    fn lookup(&self, name: &str) -> Option<St> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn weak_update(&mut self, name: &str, st: St) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = slot.join(st);
                return;
            }
        }
    }

    /// Replaces a binding's order state (used by sort laundering).
    fn set_order(&mut self, name: &str, ord: Order) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                slot.ord = ord;
                return;
            }
        }
    }

    fn finding(&mut self, line: u32, kind: FindingKind, detail: String) {
        self.out
            .push((line, kind, self.func.qualified_name(), detail));
    }

    fn walk_block(&mut self, block: &Block) -> St {
        self.scopes.push(BTreeMap::new());
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { pat, ty, init, .. } => {
                    let mut st = match init {
                        Some(e) => self.walk_expr(e),
                        None => St::default(),
                    };
                    if let Some(t) = ty {
                        if ty_is_unordered(t) {
                            st.ord = st.ord.max(Order::Coll);
                        } else if ty_is_ordered(t) {
                            st.ord = Order::Plain;
                        }
                    }
                    for (name, _) in pat.bindings() {
                        self.bind(&name, st);
                    }
                }
                Stmt::Expr(e) => {
                    self.walk_expr(e);
                }
                Stmt::Item => {}
            }
        }
        let st = match &block.tail {
            Some(e) => self.walk_expr(e),
            None => St::default(),
        };
        self.scopes.pop();
        st
    }

    fn walk_expr(&mut self, expr: &Expr) -> St {
        match expr {
            Expr::Lit => St::default(),
            Expr::Path(segs, line) => self.eval_path(segs, *line),
            Expr::Unary(e) | Expr::Cast(e) | Expr::Try(e) => self.walk_expr(e),
            Expr::Binary(_, l, r, _) => {
                let ls = self.walk_expr(l);
                let rs = self.walk_expr(r);
                // Combining two values keeps element/wall taint but is no
                // longer a collection or stream.
                let mut st = ls.join(rs);
                if matches!(st.ord, Order::Coll | Order::Stream) {
                    st.ord = Order::Plain;
                }
                st
            }
            Expr::Assign(_, lhs, rhs, _) => {
                let rs = self.walk_expr(rhs);
                let _ = self.walk_expr(lhs);
                if let Some(name) = assign_target(lhs) {
                    self.weak_update(name, rs);
                }
                St::default()
            }
            Expr::Field(base, _, _) | Expr::TupleField(base, _) => {
                let mut st = self.walk_expr(base);
                // Projecting out of a collection value is not itself ordered
                // data, but element/wall taint survives projection.
                if st.ord == Order::Coll {
                    st.ord = Order::Plain;
                }
                st
            }
            Expr::Index(base, idx, _) => {
                let bs = self.walk_expr(base);
                let _ = self.walk_expr(idx);
                // Keyed lookup into a hash collection is deterministic; only
                // element taint flows through.
                St {
                    ord: if bs.ord == Order::Elem {
                        Order::Elem
                    } else {
                        Order::Plain
                    },
                    ..bs
                }
            }
            Expr::Call(callee, args, line) => self.eval_call(callee, args, *line),
            Expr::MethodCall(recv, name, turbofish, args, line) => {
                self.eval_method(recv, name, turbofish, args, *line)
            }
            Expr::Macro(name, args, line) => self.eval_macro(name, args, *line),
            Expr::Tuple(items) | Expr::Array(items) => {
                let mut st = St::default();
                for i in items {
                    st = st.join(self.walk_expr(i));
                }
                st
            }
            Expr::StructLit(path, fields, line) => {
                let ty = path.last().cloned().unwrap_or_default();
                for (fname, v) in fields {
                    let st = self.walk_expr(v);
                    if st.wall {
                        self.finding(
                            v.line().unwrap_or(*line),
                            FindingKind::WallClockArtifact,
                            format!("wall-clock value stored into struct field `{ty}.{fname}`"),
                        );
                    }
                }
                St::default()
            }
            Expr::Range(a, b, _) => {
                let mut st = St::default();
                if let Some(a) = a {
                    st = st.join(self.walk_expr(a));
                }
                if let Some(b) = b {
                    st = st.join(self.walk_expr(b));
                }
                st
            }
            Expr::If {
                cond,
                then_block,
                else_expr,
                ..
            } => {
                let _ = self.walk_expr(cond);
                let ts = self.walk_block(then_block);
                let es = match else_expr {
                    Some(e) => self.walk_expr(e),
                    None => St::default(),
                };
                ts.join(es)
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let ss = self.walk_expr(scrutinee);
                let mut st = St::default();
                for (pat, guard, body) in arms {
                    self.scopes.push(BTreeMap::new());
                    for (name, _) in pat.bindings() {
                        self.bind(&name, ss);
                    }
                    if let Some(g) = guard {
                        self.walk_expr(g);
                    }
                    st = st.join(self.walk_expr(body));
                    self.scopes.pop();
                }
                st
            }
            Expr::Block(b) => self.walk_block(b),
            Expr::For {
                pat, iter, body, ..
            } => {
                let is = self.walk_expr(iter);
                self.scopes.push(BTreeMap::new());
                let unordered = matches!(is.ord, Order::Coll | Order::Stream);
                let elem = if unordered {
                    St {
                        ord: Order::Elem,
                        ..St::default()
                    }
                } else {
                    St::default()
                };
                for (name, _) in pat.bindings() {
                    self.bind(&name, elem);
                }
                if unordered {
                    self.hash_loop_depth += 1;
                }
                // Two passes so loop-carried accumulation reaches sinks.
                for _ in 0..2 {
                    self.walk_block(body);
                }
                if unordered {
                    self.hash_loop_depth -= 1;
                }
                self.scopes.pop();
                St::default()
            }
            Expr::While { cond, body, .. } => {
                let _ = self.walk_expr(cond);
                for _ in 0..2 {
                    self.walk_block(body);
                }
                St::default()
            }
            Expr::Loop(body) => {
                for _ in 0..2 {
                    self.walk_block(body);
                }
                St::default()
            }
            Expr::Closure { params, body } => {
                self.scopes.push(BTreeMap::new());
                for p in params {
                    for (name, _) in p.bindings() {
                        self.bind(&name, St::default());
                    }
                }
                let st = self.walk_expr(body);
                self.scopes.pop();
                st
            }
            Expr::Return(e, _) | Expr::Jump(e, _) => {
                if let Some(e) = e {
                    self.walk_expr(e);
                }
                St::default()
            }
        }
    }

    fn eval_path(&mut self, segs: &[String], line: u32) -> St {
        if segs.len() == 1 {
            if let Some(st) = self.lookup(&segs[0]) {
                return st;
            }
        }
        if segs.iter().any(|s| s == "OsRng") {
            self.finding(
                line,
                FindingKind::UnseededRng,
                "`OsRng` pulls OS entropy; use a seeded generator".to_string(),
            );
        }
        if segs.iter().any(|s| s == "UNIX_EPOCH") {
            return St {
                wall: true,
                ..St::default()
            };
        }
        St::default()
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> St {
        let mut st = St::default();
        for a in args {
            st = st.join(self.walk_expr(a));
        }
        let segs: Vec<String> = match callee {
            Expr::Path(segs, _) => segs.clone(),
            other => {
                self.walk_expr(other);
                Vec::new()
            }
        };
        let last = segs.last().map(String::as_str).unwrap_or("");
        if UNSEEDED_RNG.contains(&last) {
            self.finding(
                line,
                FindingKind::UnseededRng,
                format!("RNG constructed from OS entropy via `{last}`; use a seeded constructor"),
            );
            return St::default();
        }
        if segs.iter().any(|s| s == "OsRng") {
            self.finding(
                line,
                FindingKind::UnseededRng,
                "`OsRng` pulls OS entropy; use a seeded generator".to_string(),
            );
            return St::default();
        }
        if last == "now" && segs.iter().any(|s| s == "Instant" || s == "SystemTime") {
            return St { wall: true, ..st };
        }
        if segs.iter().any(|s| s == "HashMap" || s == "HashSet") {
            return St {
                ord: Order::Coll,
                ..st
            };
        }
        if last == "current" && segs.iter().any(|s| s == "thread") {
            return St { thread: true, ..st };
        }
        // Collections and streams do not survive arbitrary calls; element
        // and wall taint do.
        if matches!(st.ord, Order::Coll | Order::Stream) {
            st.ord = Order::Plain;
        }
        st
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        name: &str,
        turbofish: &[String],
        args: &[Expr],
        line: u32,
    ) -> St {
        let rs = self.walk_expr(recv);
        let mut args_st = St::default();
        for a in args {
            args_st = args_st.join(self.walk_expr(a));
        }

        if rs.thread && name == "id" {
            self.finding(
                line,
                FindingKind::ThreadOrdering,
                "`thread::current().id()` feeds computation; key by worker index instead"
                    .to_string(),
            );
            return St::default();
        }
        if SORTS.contains(&name) {
            if let Expr::Path(segs, _) = recv {
                if segs.len() == 1 {
                    self.set_order(&segs[0], Order::Plain);
                }
            }
            return St::default();
        }
        if SINK_METHODS.contains(&name) && (args_st.emits_unordered() || self.hash_loop_depth > 0) {
            self.finding(
                line,
                FindingKind::HashOrderEmission,
                format!("unordered `HashMap`/`HashSet` iteration reaches emission via `{name}`"),
            );
            return St::default();
        }
        if ITER_METHODS.contains(&name) && matches!(rs.ord, Order::Coll | Order::Stream) {
            return St {
                ord: Order::Stream,
                ..rs
            };
        }
        if name == "collect" {
            // `collect::<String>()` is NOT laundering: the characters land
            // in iteration order. Only sorted containers reorder.
            let ordered = turbofish.iter().any(|t| t == "BTreeMap" || t == "BTreeSet");
            let unordered = turbofish.iter().any(|t| t == "HashMap" || t == "HashSet");
            if unordered {
                return St {
                    ord: Order::Coll,
                    ..St::default()
                };
            }
            if ordered {
                return St::default();
            }
            // `collect::<Vec<_>>()` (or un-annotated collect) freezes the
            // nondeterministic order into the result.
            return St {
                ord: if rs.ord == Order::Stream {
                    Order::Coll
                } else {
                    Order::Plain
                },
                ..St::default()
            };
        }
        if rs.ord == Order::Stream {
            if ADAPTERS.contains(&name) {
                return rs;
            }
            if SAFE_TERMINALS.contains(&name) {
                return St::default();
            }
            if HAZARD_TERMINALS.contains(&name) {
                self.finding(
                    line,
                    FindingKind::HashOrderEmission,
                    format!("order-dependent `{name}` over `HashMap`/`HashSet` iteration"),
                );
                return St::default();
            }
        }
        // Appending an element of unordered iteration into an
        // order-preserving container makes that container unordered.
        if (name == "push" || name == "extend") && args_st.emits_unordered() {
            if let Expr::Path(segs, _) = recv {
                if segs.len() == 1 {
                    self.weak_update(
                        &segs[0],
                        St {
                            ord: Order::Coll,
                            ..St::default()
                        },
                    );
                }
            }
            return St::default();
        }
        // Wall-clock taint flows through time arithmetic (`elapsed`,
        // `duration_since`, `as_secs_f64`, ...); element taint flows through
        // accessors. Collection/stream states do not survive unknown calls.
        let mut st = rs.join(args_st);
        if matches!(st.ord, Order::Coll | Order::Stream) {
            st.ord = Order::Plain;
        }
        st.thread = false;
        st
    }

    fn eval_macro(&mut self, name: &str, args: &[Expr], line: u32) -> St {
        let mut st = St::default();
        for a in args {
            st = st.join(self.walk_expr(a));
        }
        if SINK_MACROS.contains(&name) && (st.emits_unordered() || self.hash_loop_depth > 0) {
            self.finding(
                line,
                FindingKind::HashOrderEmission,
                format!("unordered `HashMap`/`HashSet` iteration reaches emission via `{name}!`"),
            );
            return St::default();
        }
        if matches!(st.ord, Order::Coll | Order::Stream) {
            st.ord = Order::Plain;
        }
        st
    }
}

/// The variable a (possibly nested) assignment target ultimately writes to.
fn assign_target(lhs: &Expr) -> Option<&str> {
    match lhs {
        Expr::Path(segs, _) if segs.len() == 1 => Some(&segs[0]),
        Expr::Unary(e) | Expr::Index(e, _, _) | Expr::Field(e, _, _) | Expr::TupleField(e, _) => {
            assign_target(e)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn lint(src: &str) -> Vec<Finding> {
        let module = parse_file(src).expect("parse");
        lint_module("test.rs", &module)
    }

    #[test]
    fn hashmap_iteration_feeding_json_emission_is_flagged() {
        let findings = lint(
            "use std::collections::HashMap;\n\
             fn emit(m: &HashMap<String, u64>) -> String {\n\
             let mut out = String::new();\n\
             for (k, v) in m.iter() {\n\
               out.push_str(&format!(\"\\\"{k}\\\": {v},\"));\n\
             }\n\
             out }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::HashOrderEmission);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn btreemap_version_of_the_same_code_passes() {
        let findings = lint(
            "use std::collections::BTreeMap;\n\
             fn emit(m: &BTreeMap<String, u64>) -> String {\n\
             let mut out = String::new();\n\
             for (k, v) in m.iter() {\n\
               out.push_str(&format!(\"\\\"{k}\\\": {v},\"));\n\
             }\n\
             out }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn det_allow_suppresses_but_keeps_the_finding() {
        let findings = lint(
            "use std::collections::HashMap;\n\
             fn emit(m: &HashMap<String, u64>) -> String {\n\
             let mut out = String::new();\n\
             for (k, v) in m.iter() {\n\
               // det-allow: debug dump, never exported\n\
               out.push_str(&format!(\"{k}={v}\"));\n\
             }\n\
             out }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].suppressed.as_deref(),
            Some("debug dump, never exported")
        );
    }

    #[test]
    fn float_sum_over_hash_values_is_flagged_and_sort_launders() {
        let flagged = lint(
            "use std::collections::HashMap;\n\
             fn h(m: &HashMap<u64, f64>) -> f64 { m.values().sum() }",
        );
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].kind, FindingKind::HashOrderEmission);

        let laundered = lint(
            "use std::collections::HashMap;\n\
             fn h(m: &HashMap<u64, u64>) -> String {\n\
             let mut keys: Vec<u64> = m.keys().copied().collect();\n\
             keys.sort();\n\
             let mut out = String::new();\n\
             for k in keys.iter() { out.push_str(&format!(\"{k}\")); }\n\
             out }",
        );
        assert!(laundered.is_empty(), "{laundered:?}");
    }

    #[test]
    fn collect_into_btreemap_launders() {
        let findings = lint(
            "use std::collections::HashMap;\n\
             fn h(m: &HashMap<u64, u64>) -> String {\n\
             let sorted = m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>();\n\
             let mut out = String::new();\n\
             for (k, v) in sorted.iter() { out.push_str(&format!(\"{k}={v}\")); }\n\
             out }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn order_insensitive_terminals_are_fine() {
        let findings = lint(
            "use std::collections::HashSet;\n\
             fn h(s: &HashSet<u64>) -> (usize, bool, Option<u64>) {\n\
             (s.iter().count(), s.iter().any(|x| *x > 3), s.iter().copied().max())\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unseeded_rng_constructors_are_flagged() {
        let findings = lint(
            "fn f() -> u64 {\n\
             let mut rng = rand::thread_rng();\n\
             rng.gen() }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::UnseededRng);
        let blessed = lint(
            "fn f() -> u64 {\n\
             let mut rng = SplitMix64::seed_from_u64(42);\n\
             rng.next() }",
        );
        assert!(blessed.is_empty(), "{blessed:?}");
    }

    #[test]
    fn wall_clock_reaching_struct_literal_is_flagged() {
        let findings = lint(
            "fn f() -> Record {\n\
             let started = std::time::Instant::now();\n\
             let secs = started.elapsed().as_secs_f64();\n\
             Record { wall_seconds: secs, runs: 3 }\n\
             }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::WallClockArtifact);
        assert!(findings[0].detail.contains("Record.wall_seconds"));
        let sim = lint("fn f(clock: u64) -> Record { Record { wall_seconds: clock, runs: 3 } }");
        assert!(sim.is_empty(), "{sim:?}");
    }

    #[test]
    fn thread_id_feeding_computation_is_flagged() {
        let findings = lint("fn f() -> u64 { hash(std::thread::current().id()) }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::ThreadOrdering);
    }

    #[test]
    fn config_allowlist_suppresses_by_suffix_and_kind() {
        let module =
            parse_file("fn f() -> u64 { let mut r = rand::thread_rng(); r.gen() }").expect("parse");
        let files = vec![("src/live.rs".to_string(), module)];
        let by_file = lint_files(&files, &["live.rs".to_string()]);
        assert!(by_file[0].suppressed.is_some());
        let by_kind = lint_files(&files, &["live.rs:unseeded-rng".to_string()]);
        assert!(by_kind[0].suppressed.is_some());
        let wrong_kind = lint_files(&files, &["live.rs:wall-clock-artifact".to_string()]);
        assert!(wrong_kind[0].suppressed.is_none());
    }
}
