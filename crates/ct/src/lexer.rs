//! A lossless-enough Rust tokenizer for the taint analyzer.
//!
//! The analyzer does not need a full fidelity lexer — it needs identifiers,
//! literals, punctuation and delimiters with accurate **line numbers**, plus
//! the side table of `// ct-allow: <reason>` suppression comments. Doc
//! comments and attributes-in-comments are trivia and are dropped.

use std::collections::BTreeMap;
use std::fmt;

/// One token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
}

/// Token classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident(String),
    /// Lifetime such as `'a` (the leading quote is stripped).
    Lifetime(String),
    /// Integer literal, with the parsed value when it fits `u128`.
    Int(Option<u128>),
    /// Float literal.
    Float,
    /// String or byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation, longest-match (`<<=`, `..=`, `::`, `->`, …).
    Punct(&'static str),
    /// `(`, `[` or `{`.
    Open(char),
    /// `)`, `]` or `}`.
    Close(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// Whether this token is the identifier/keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == kw)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Lifetime(s) => write!(f, "lifetime `'{s}`"),
            TokenKind::Int(_) => f.write_str("integer literal"),
            TokenKind::Float => f.write_str("float literal"),
            TokenKind::Str => f.write_str("string literal"),
            TokenKind::Char => f.write_str("char literal"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Open(c) => write!(f, "`{c}`"),
            TokenKind::Close(c) => write!(f, "`{c}`"),
        }
    }
}

/// Lexer output: the token stream plus the suppression-comment side tables.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `line -> reason` for every `// ct-allow: <reason>` comment.
    pub allows: BTreeMap<u32, String>,
    /// `line -> reason` for every `// det-allow: <reason>` comment.
    pub det_allows: BTreeMap<u32, String>,
    /// Lines carrying a `// ct-secret` annotation, marking the binding or
    /// parameter declared there as a secret root regardless of config.
    pub secret_marks: BTreeMap<u32, String>,
}

/// A lexical error (unterminated literal or comment).
#[derive(Clone, Debug)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line the error was detected on.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// The marker that starts a taint-suppression comment.
pub const ALLOW_MARKER: &str = "ct-allow:";

/// The marker that starts a determinism-suppression comment.
pub const DET_ALLOW_MARKER: &str = "det-allow:";

/// The marker that promotes the binding on its line to a secret root.
pub const SECRET_MARKER: &str = "ct-secret";

// Multi-character punctuation, longest first so greedy matching is correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "<", ">", "=", "+", "-", "*", "/", "%",
    "^", "&", "|", "!", "?", "@", ",", ";", ":", ".", "#", "$", "~",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `src`, collecting `ct-allow` comments along the way.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Lexed::default();

    'outer: while let Some(b) = cur.peek() {
        let line = cur.line;
        let col = cur.col();
        // Whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Line comments (incl. doc comments) — capture ct-allow markers.
        if cur.starts_with("//") {
            let start = cur.pos;
            while let Some(c) = cur.peek() {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            let text = &src[start..cur.pos];
            if let Some(idx) = text.find(ALLOW_MARKER) {
                let reason = text[idx + ALLOW_MARKER.len()..].trim().to_string();
                out.allows.insert(line, reason);
            } else if let Some(idx) = text.find(DET_ALLOW_MARKER) {
                let reason = text[idx + DET_ALLOW_MARKER.len()..].trim().to_string();
                out.det_allows.insert(line, reason);
            } else if let Some(idx) = text.find(SECRET_MARKER) {
                let reason = text[idx + SECRET_MARKER.len()..]
                    .trim_start_matches(':')
                    .trim()
                    .to_string();
                out.secret_marks.insert(line, reason);
            }
            continue;
        }
        // Block comments, with nesting.
        if cur.starts_with("/*") {
            let open_line = cur.line;
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else if cur.bump().is_none() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line: open_line,
                    });
                }
            }
            continue;
        }
        // Identifiers, keywords, and prefixed literals (b"..", r"..", br"..").
        if is_ident_start(b) {
            let start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            let word = &src[start..cur.pos];
            // String prefixes.
            if matches!(word, "b" | "r" | "br" | "rb") {
                match cur.peek() {
                    Some(b'"') => {
                        let raw = word.contains('r');
                        lex_string(&mut cur, raw, 0)?;
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            line,
                            col,
                        });
                        continue;
                    }
                    Some(b'#') if word.contains('r') => {
                        let mut hashes = 0usize;
                        while cur.peek() == Some(b'#') {
                            cur.bump();
                            hashes += 1;
                        }
                        if cur.peek() == Some(b'"') {
                            lex_string(&mut cur, true, hashes)?;
                            out.tokens.push(Token {
                                kind: TokenKind::Str,
                                line,
                                col,
                            });
                            continue;
                        }
                        // Not actually a raw string — emit what we consumed.
                        out.tokens.push(Token {
                            kind: TokenKind::Ident(word.to_string()),
                            line,
                            col,
                        });
                        for _ in 0..hashes {
                            out.tokens.push(Token {
                                kind: TokenKind::Punct("#"),
                                line,
                                col,
                            });
                        }
                        continue;
                    }
                    Some(b'\'') if word == "b" => {
                        lex_char(&mut cur)?;
                        out.tokens.push(Token {
                            kind: TokenKind::Char,
                            line,
                            col,
                        });
                        continue;
                    }
                    _ => {}
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(word.to_string()),
                line,
                col,
            });
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            let start = cur.pos;
            let mut is_float = false;
            if cur.starts_with("0x") || cur.starts_with("0X") {
                cur.bump();
                cur.bump();
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_hexdigit() || c == b'_')
                {
                    cur.bump();
                }
            } else if cur.starts_with("0b") || cur.starts_with("0o") {
                cur.bump();
                cur.bump();
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    cur.bump();
                }
            } else {
                while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    cur.bump();
                }
                // Fractional part — but not `1..3` (range) or `1.method()`.
                if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    cur.bump();
                    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                        cur.bump();
                    }
                }
                if matches!(cur.peek(), Some(b'e' | b'E'))
                    && cur
                        .peek_at(1)
                        .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
                {
                    is_float = true;
                    cur.bump();
                    if matches!(cur.peek(), Some(b'+' | b'-')) {
                        cur.bump();
                    }
                    while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                        cur.bump();
                    }
                }
            }
            let digits_end = cur.pos;
            // Type suffix (`u8`, `usize`, `f64`, …).
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            let kind = if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int(parse_int(&src[start..digits_end]))
            };
            out.tokens.push(Token { kind, line, col });
            continue;
        }
        // Strings.
        if b == b'"' {
            lex_string(&mut cur, false, 0)?;
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line,
                col,
            });
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            let next = cur.peek_at(1);
            let after = cur.peek_at(2);
            let is_lifetime = next.is_some_and(is_ident_start) && after != Some(b'\'');
            if is_lifetime {
                cur.bump(); // '
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime(src[start..cur.pos].to_string()),
                    line,
                    col,
                });
            } else {
                lex_char(&mut cur)?;
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                    col,
                });
            }
            continue;
        }
        // Delimiters.
        if matches!(b, b'(' | b'[' | b'{') {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Open(b as char),
                line,
                col,
            });
            continue;
        }
        if matches!(b, b')' | b']' | b'}') {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Close(b as char),
                line,
                col,
            });
            continue;
        }
        // Punctuation, longest match first.
        for p in PUNCTS {
            if cur.starts_with(p) {
                for _ in 0..p.len() {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col,
                });
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected byte {:?}", b as char),
            line,
        });
    }
    Ok(out)
}

fn parse_int(raw: &str) -> Option<u128> {
    let clean: String = raw.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = clean.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = clean.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else {
        clean.parse().ok()
    }
}

fn lex_string(cur: &mut Cursor<'_>, raw: bool, hashes: usize) -> Result<(), LexError> {
    let open_line = cur.line;
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => {
                return Err(LexError {
                    message: "unterminated string literal".into(),
                    line: open_line,
                })
            }
            Some(b'\\') if !raw => {
                cur.bump();
            }
            Some(b'"') => {
                if !raw || hashes == 0 {
                    return Ok(());
                }
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return Ok(());
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_char(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    let open_line = cur.line;
    cur.bump(); // opening quote
    match cur.bump() {
        Some(b'\\') => {
            cur.bump();
        }
        Some(_) => {}
        None => {
            return Err(LexError {
                message: "unterminated char literal".into(),
                line: open_line,
            })
        }
    }
    // Multi-byte UTF-8 scalars and \x41 / \u{...} escapes span more bytes.
    while cur.peek().is_some() && cur.peek() != Some(b'\'') {
        cur.bump();
    }
    if cur.bump() != Some(b'\'') {
        return Err(LexError {
            message: "unterminated char literal".into(),
            line: open_line,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let k = kinds("let x = 0x1f_u8 << 2;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("let".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(Some(0x1f)),
                TokenKind::Punct("<<"),
                TokenKind::Int(Some(2)),
                TokenKind::Punct(";"),
            ]
        );
    }

    #[test]
    fn ranges_are_not_floats() {
        let k = kinds("0..16");
        assert_eq!(
            k,
            vec![
                TokenKind::Int(Some(0)),
                TokenKind::Punct(".."),
                TokenKind::Int(Some(16)),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("&'a str 'x' '\\n'");
        assert_eq!(
            k,
            vec![
                TokenKind::Punct("&"),
                TokenKind::Lifetime("a".into()),
                TokenKind::Ident("str".into()),
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn multibyte_char_literals_lex() {
        // Regression: sparkline tables use multi-byte scalars (`'▁'`),
        // which span several bytes between the quotes.
        let k = kinds("['▁', '▂', '█'] '\\u{2581}' '€'");
        assert_eq!(k.iter().filter(|t| matches!(t, TokenKind::Char)).count(), 5);
    }

    #[test]
    fn ct_allow_comments_land_in_side_table() {
        let lexed = lex("let a = 1;\nlet b = 2; // ct-allow: because reasons\n").unwrap();
        assert_eq!(
            lexed.allows.get(&2).map(String::as_str),
            Some("because reasons")
        );
        assert!(!lexed.allows.contains_key(&1));
    }

    #[test]
    fn det_allow_and_secret_markers_land_in_side_tables() {
        let lexed = lex(concat!(
            "let t = now(); // det-allow: wall block only\n",
            "let k = load(); // ct-secret\n",
            "let m = load(); // ct-secret: master key\n",
        ))
        .unwrap();
        assert_eq!(
            lexed.det_allows.get(&1).map(String::as_str),
            Some("wall block only")
        );
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.secret_marks.get(&2).map(String::as_str), Some(""));
        assert_eq!(
            lexed.secret_marks.get(&3).map(String::as_str),
            Some("master key")
        );
    }

    #[test]
    fn doc_comments_and_strings_are_opaque() {
        let lexed = lex("/// secret[idx]\nfn f() { \"if x[i] {}\" }").unwrap();
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect();
        assert_eq!(idents, vec!["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n  c").unwrap();
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert_eq!(lexed.tokens[2].col, 3);
    }

    #[test]
    fn nested_block_comments() {
        assert!(lex("/* a /* b */ c */ fn").is_ok());
        assert!(lex("/* unterminated").is_err());
    }
}
