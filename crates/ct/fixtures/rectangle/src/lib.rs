//! Stub RECTANGLE cipher: the second `grinch-ct` target, proving the taint
//! engine is cipher-agnostic. Not a workspace member — these sources exist
//! only to be analyzed, with secret roots declared in `../ct-config.toml`.

mod sbox;

pub use sbox::{sub_column, RECT_SBOX};

/// 80-bit RECTANGLE key, packed into two words.
pub struct RectKey {
    /// Key words, low word first.
    pub words: [u64; 2],
}

/// Expanded key schedule (the `subkeys` field name is a declared secret).
pub struct Rectangle {
    subkeys: Vec<u64>,
}

impl Rectangle {
    /// Expands the key schedule eagerly.
    pub fn new(key: RectKey) -> Self {
        let mut subkeys = Vec::new();
        let mut w = key.words[0];
        let mut i = 0usize;
        while i < 26 {
            w = w.rotate_left(8) ^ key.words[1] ^ (i as u64);
            subkeys.push(w);
            i += 1;
        }
        Rectangle { subkeys }
    }

    /// One table-driven round: the lookup a cache observer sees.
    pub fn round(&self, block: u64, r: usize) -> u64 {
        let mixed = block ^ self.subkeys[r];
        sub_column(mixed)
    }
}
