//! RECTANGLE S-box layer, with one deliberate leak, one reviewed branch,
//! and one `// ct-secret` annotation — the fixture exercises every way a
//! secret root can be declared.

use crate::RectKey;

/// The RECTANGLE 4-bit S-box (16 bytes: spans two 8-byte cache lines).
pub const RECT_SBOX: [u8; 16] = [
    0x6, 0x5, 0xc, 0xa, 0x1, 0xe, 0x7, 0x9, 0xb, 0x0, 0x3, 0xd, 0x8, 0xf, 0x4, 0x2,
];

/// Parity helper table: 8 bytes, fits one cache line.
pub const PARITY: [u8; 8] = [0, 1, 1, 0, 1, 0, 0, 1];

/// Substitutes the low column through the table — leaks the nibble.
pub fn sub_column(mixed: u64) -> u64 {
    let nibble = (mixed & 0xf) as usize;
    u64::from(RECT_SBOX[nibble])
}

/// The `// ct-secret` mark makes `shared` a root even though nothing in
/// the target config names it; the PARITY lookup is line-safe at 8 bytes.
pub fn whiten(block: u64) -> u64 {
    // ct-secret
    let shared = block.rotate_left(17);
    let row = (shared & 0x7) as usize;
    u64::from(PARITY[row]) ^ block
}

/// Weak-key screening: the branch is reviewed, the early return is not.
pub fn is_weak(key: RectKey) -> bool {
    // ct-allow: weak-key screening happens once at key setup
    if key.words[0] == 0 {
        return true;
    }
    false
}
