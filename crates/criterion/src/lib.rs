//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of a simple wall-clock sampler:
//! per benchmark it warms up, calibrates an iteration count targeting a
//! fixed measurement window, takes `sample_size` samples and reports
//! median / mean / min ns per iteration.
//!
//! No CLI filtering, plotting or statistical regression — `cargo bench`
//! prints one line per benchmark, which is all the repo's harness needs.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a group (printed, not analysed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// Per-benchmark measurement settings.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

fn run_samples<F: FnMut(&mut Bencher<'_>)>(id: &str, settings: &Settings, mut routine: F) {
    // Calibration: start at 1 iteration and grow until one sample takes at
    // least measurement_time / sample_size.
    let per_sample = settings.measurement_time / settings.sample_size.max(1) as u32;
    let mut iters: u64 = 1;
    loop {
        let mut elapsed = Duration::ZERO;
        routine(&mut Bencher {
            iters,
            elapsed: &mut elapsed,
        });
        if elapsed >= per_sample || iters >= 1 << 30 {
            break;
        }
        // Grow towards the target with a safety factor of 2.
        let grow = if elapsed.is_zero() {
            100
        } else {
            (per_sample.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 100));
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut elapsed = Duration::ZERO;
        routine(&mut Bencher {
            iters,
            elapsed: &mut elapsed,
        });
        per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns[0];
    println!(
        "{id:<50} median {} mean {} min {} ({} iters x {} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        iters,
        per_iter_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    let mut out = String::new();
    if ns < 1_000.0 {
        let _ = write!(out, "{ns:8.1} ns");
    } else if ns < 1_000_000.0 {
        let _ = write!(out, "{:8.2} us", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(out, "{:8.2} ms", ns / 1_000_000.0);
    } else {
        let _ = write!(out, "{:8.2} s ", ns / 1_000_000_000.0);
    }
    out
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Annotates the group's throughput (printed only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("# group {}: throughput {throughput:?}", self.name);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl core::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_samples(&full, &self.settings, &mut f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_samples(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The bench harness entry point (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl core::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = self.settings;
        run_samples(&id.to_string(), &settings, &mut f);
        self
    }
}

/// Declares a group of bench functions (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` and filter args; this harness
            // runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut acc = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
