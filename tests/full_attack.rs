//! Integration tests: the complete GRINCH attack end to end, across
//! different secret keys, probing conditions and probe mechanics.

use gift_cipher::{Gift64, Key};
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::oracle::{ObservationConfig, ProbeStrategy, VictimOracle};
use grinch::stage::StageConfig;

fn attack(secret: Key, obs: ObservationConfig, cap: u64) -> grinch::attack::AttackOutcome {
    let mut oracle = VictimOracle::new(secret, obs);
    let config = AttackConfig {
        stage: StageConfig::new().with_max_encryptions(cap),
        ..AttackConfig::default()
    };
    recover_full_key(&mut oracle, &config)
}

#[test]
fn recovers_many_random_like_keys_in_ideal_setting() {
    // Structured and unstructured keys alike.
    let secrets = [
        Key::from_u128(0),
        Key::from_u128(u128::MAX),
        Key::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210),
        Key::from_u128(0x8000_0000_0000_0000_0000_0000_0000_0001),
        Key::from_u128(0x5555_5555_5555_5555_aaaa_aaaa_aaaa_aaaa),
    ];
    for secret in secrets {
        let outcome = attack(secret, ObservationConfig::ideal(), 100_000);
        assert_eq!(outcome.key, Some(secret), "failed for key {secret}");
        assert!(
            outcome.encryptions < 2_000,
            "key {secret} took {} encryptions",
            outcome.encryptions
        );
    }
}

#[test]
fn headline_claim_full_key_under_400_encryptions_order_of_magnitude() {
    // The paper reports < 400 encryptions for the full key in the best
    // case. Our reproduction must at least land in the same order of
    // magnitude (hundreds, not thousands).
    let secret = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let outcome = attack(secret, ObservationConfig::ideal(), 100_000);
    assert_eq!(outcome.key, Some(secret));
    assert!(
        outcome.encryptions < 1_000,
        "expected a few hundred encryptions, got {}",
        outcome.encryptions
    );
    assert_eq!(outcome.stage_encryptions.len(), 4);
}

#[test]
fn recovery_works_without_flush_at_higher_cost() {
    let secret = Key::from_u128(0x1122_3344_5566_7788_99aa_bbcc_ddee_ff00);
    let with_flush = attack(secret, ObservationConfig::ideal(), 200_000);
    let without = attack(
        secret,
        ObservationConfig::ideal().with_flush(false),
        200_000,
    );
    assert_eq!(with_flush.key, Some(secret));
    assert_eq!(without.key, Some(secret));
    assert!(
        without.encryptions > with_flush.encryptions,
        "no-flush ({}) should cost more than flush ({})",
        without.encryptions,
        with_flush.encryptions
    );
}

#[test]
fn recovery_works_at_probing_round_three() {
    let secret = Key::from_u128(0xfeed_face_0bad_cafe_1234_5678_9abc_def0);
    let outcome = attack(
        secret,
        ObservationConfig::ideal().with_probing_round(3),
        400_000,
    );
    assert_eq!(outcome.key, Some(secret));
}

#[test]
fn recovery_works_with_prime_probe_mechanic() {
    let secret = Key::from_u128(0x0bad_f00d_dead_beef_cafe_babe_f01d_ab1e);
    let obs = ObservationConfig {
        strategy: ProbeStrategy::PrimeProbe,
        ..ObservationConfig::ideal()
    };
    let outcome = attack(secret, obs, 100_000);
    assert_eq!(outcome.key, Some(secret));
}

#[test]
fn recovery_works_on_two_word_lines() {
    let secret = Key::from_u128(0x2222_4444_6666_8888_aaaa_cccc_eeee_0000);
    let obs = ObservationConfig::ideal().with_words_per_line(2);
    let outcome = attack(secret, obs, 400_000);
    assert_eq!(outcome.key, Some(secret));
}

#[test]
fn recovered_key_decrypts_fresh_ciphertexts() {
    let secret = Key::from_u128(0x1010_2020_3030_4040_5050_6060_7070_8080);
    let outcome = attack(secret, ObservationConfig::ideal(), 100_000);
    let key = outcome.key.expect("recovery succeeds");
    let cipher = Gift64::new(key);
    let victim = Gift64::new(secret);
    for pt in [0u64, 42, 0xffff_ffff_ffff_ffff] {
        assert_eq!(cipher.decrypt(victim.encrypt(pt)), pt);
    }
}

#[test]
fn attack_counts_every_victim_encryption() {
    let secret = Key::from_u128(7);
    let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
    let before = oracle.encryptions();
    let outcome = recover_full_key(&mut oracle, &AttackConfig::default());
    assert_eq!(before, 0);
    assert_eq!(outcome.encryptions, oracle.encryptions());
    // Stages plus the verification pair.
    let stage_total: u64 = outcome.stage_encryptions.iter().sum();
    assert!(outcome.encryptions > stage_total);
}
