//! Integration tests across the substrate crates: the cipher's access
//! stream through the cache simulator, the attack's observation
//! convention, and structural consistency between crates.

use cache_sim::{Cache, CacheConfig, CacheObserver};
use gift_cipher::state::segment_64;
use gift_cipher::{Gift64, Key, RecordingObserver, TableGift64, TableLayout, GIFT64_ROUNDS};
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch::target::TargetSpec;

#[test]
fn table_cipher_access_stream_matches_reference_round_inputs() {
    let key = Key::from_u128(0xace0_1357_9bdf_2468_0f0f_f0f0_3c3c_c3c3);
    let layout = TableLayout::new(0x4000);
    let table = TableGift64::new(key, layout);
    let reference = Gift64::new(key);
    let pt = 0x7777_1111_9999_3333;

    let mut trace = RecordingObserver::new();
    let ct = table.encrypt_with(pt, &mut trace);
    assert_eq!(ct, reference.encrypt(pt));

    let inputs = reference.round_inputs(pt);
    let addrs = trace.sbox_addrs();
    assert_eq!(addrs.len(), 16 * GIFT64_ROUNDS);
    for (r, input) in inputs.iter().enumerate() {
        for seg in 0..16 {
            assert_eq!(
                addrs[16 * r + seg],
                layout.sbox_entry_addr(segment_64(*input, seg)),
                "round {} segment {}",
                r + 1,
                seg
            );
        }
    }
}

#[test]
fn cache_residency_after_one_round_equals_distinct_round_indices() {
    let key = Key::from_u128(0x1234);
    let layout = TableLayout::new(0x400);
    let table = TableGift64::new(key, layout);
    let mut cache = Cache::new(CacheConfig::grinch_default());
    let pt = 0xaaaa_bbbb_cccc_dddd;

    let mut enc = table.start_encryption(pt);
    enc.step_round(&mut CacheObserver::new(&mut cache));

    let mut distinct: Vec<u8> = (0..16).map(|s| segment_64(pt, s)).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(cache.resident_lines(), distinct.len());
    for nib in distinct {
        assert!(cache.contains(layout.sbox_entry_addr(nib)));
    }
}

#[test]
fn oracle_observation_window_matches_round_input_ground_truth() {
    // The Fig. 3 convention: probing round k observes rounds 1..=k+1
    // (without flush) or 2..=k+1 (with flush).
    let key = Key::from_u128(0x9876_5432_10fe_dcba_0011_2233_4455_6677);
    let reference = Gift64::new(key);
    let pt = 0x1357_9bdf_0246_8ace;
    for k in 1..=4usize {
        for flush in [true, false] {
            let cfg = ObservationConfig::ideal()
                .with_probing_round(k)
                .with_flush(flush);
            let mut oracle = VictimOracle::new(key, cfg);
            let observed = oracle.observe(pt);
            let first_round = if flush { 2 } else { 1 };
            let mut expected = std::collections::BTreeSet::new();
            for r in first_round..=(k + 1) {
                let input = reference.encrypt_rounds(pt, r - 1);
                for s in 0..16 {
                    expected.insert(oracle.config().line_addr_of_index(segment_64(input, s)));
                }
            }
            assert_eq!(observed, expected, "k={k} flush={flush}");
        }
    }
}

#[test]
fn target_spec_predictions_agree_with_real_executions() {
    // For every stage and segment: craft, encrypt for real through the
    // table cipher, and check the accessed index equals the prediction.
    let key = Key::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f00);
    let reference = Gift64::new(key);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    use rand::SeedableRng;

    for stage in 1..=4usize {
        let known = &reference.round_keys()[..stage - 1];
        let rk = reference.round_keys()[stage - 1];
        for segment in 0..16 {
            let spec = TargetSpec::new(stage, segment);
            let pt = grinch::craft::craft_plaintext(&[spec], known, &mut rng).unwrap();
            let round_input = reference.encrypt_rounds(pt, stage);
            let v = (rk.v >> segment) & 1 == 1;
            let u = (rk.u >> segment) & 1 == 1;
            assert_eq!(
                segment_64(round_input, segment),
                spec.expected_index(v, u),
                "stage {stage} segment {segment}"
            );
        }
    }
}

#[test]
fn stage_observation_window_slides_with_the_attacked_round() {
    // Stage t's probe must capture round t+1's accesses (the stage-t
    // signal); with flush the window is exactly rounds t+1 ..= t+k.
    let key = Key::from_u128(0x5152_5354_5556_5758_595a_5b5c_5d5e_5f60);
    let reference = Gift64::new(key);
    let pt = 0x0102_0304_0506_0708;
    for stage in 1..=4usize {
        let cfg = ObservationConfig::ideal(); // probing round 1, flush
        let mut oracle = VictimOracle::new(key, cfg);
        let observed = oracle.observe_stage(pt, stage);
        let signal_round_input = reference.encrypt_rounds(pt, stage);
        let expected: std::collections::BTreeSet<u64> = (0..16)
            .map(|s| {
                oracle
                    .config()
                    .line_addr_of_index(segment_64(signal_round_input, s))
            })
            .collect();
        assert_eq!(observed, expected, "stage {stage}");
    }
}

#[test]
fn sbox_lines_survive_in_large_cache_without_self_eviction() {
    // The 16-byte table in a 1024-line cache: a full encryption must never
    // evict its own S-box lines (no aliasing at this size).
    let key = Key::from_u128(0xf00d);
    let layout = TableLayout::new(0x400);
    let table = TableGift64::new(key, layout);
    let mut cache = Cache::new(CacheConfig::grinch_default());
    table.encrypt_with(0x1234_5678, &mut CacheObserver::new(&mut cache));
    assert_eq!(cache.stats().evictions, 0);
}
