//! Integration tests of the SoC platform simulations feeding Table II.

use soc_sim::platform::PlatformConfig;
use soc_sim::scenario::{run_mpsoc, run_single_soc};

#[test]
fn table2_single_soc_row() {
    for (freq, expected) in [(10_000_000u64, 2usize), (25_000_000, 4), (50_000_000, 8)] {
        let report = run_single_soc(&PlatformConfig::single_soc(freq));
        assert_eq!(report.first_probe_round(), Some(expected), "{freq} Hz");
    }
}

#[test]
fn table2_mpsoc_row() {
    for freq in [10_000_000u64, 25_000_000, 50_000_000] {
        let report = run_mpsoc(&PlatformConfig::mpsoc(freq));
        assert_eq!(report.first_probe_round(), Some(1), "{freq} Hz");
    }
}

#[test]
fn single_soc_probe_frequency_ordering_is_monotone() {
    // Faster victim clocks finish more rounds per quantum, so the first
    // probe lands strictly later in the encryption.
    let mut rounds = Vec::new();
    for freq in [10_000_000u64, 25_000_000, 50_000_000] {
        let report = run_single_soc(&PlatformConfig::single_soc(freq));
        rounds.push(report.first_probe_round().expect("probe lands"));
    }
    assert!(rounds.windows(2).all(|w| w[0] < w[1]), "{rounds:?}");
}

#[test]
fn mpsoc_probes_are_dense_relative_to_rounds() {
    let report = run_mpsoc(&PlatformConfig::mpsoc(50_000_000));
    // The paper's anchor: a remote probe is ~400 ns/line while a round is
    // 1.2 ms at 50 MHz, so many probes land inside each round.
    let probes_in_round_1 = report
        .probes
        .iter()
        .filter(|p| p.victim_round == Some(1))
        .count();
    assert!(
        probes_in_round_1 >= 10,
        "only {probes_in_round_1} probes in round 1"
    );
}

#[test]
fn mpsoc_differential_probing_recovers_per_round_access_sets() {
    // Consecutive probe passes flush what they read, so hits in a pass
    // are accesses since the previous pass: a pass completing in round r+1
    // after passes in round r carries (a subset of) round r+1's lines.
    let cfg = PlatformConfig::mpsoc(10_000_000);
    let report = run_mpsoc(&cfg);
    let hits_during_encryption: usize = report
        .probes
        .iter()
        .filter(|p| p.victim_round.is_some())
        .map(|p| p.hit_lines.len())
        .sum();
    // 28 rounds x <=16 distinct lines: the differential total must be of
    // that order and definitely nonzero.
    assert!(hits_during_encryption > 28, "{hits_during_encryption}");
    assert!(hits_during_encryption <= 28 * 16);
}

#[test]
fn victim_ciphertext_is_correct_on_both_platforms() {
    let soc = run_single_soc(&PlatformConfig::single_soc(25_000_000));
    let mpsoc = run_mpsoc(&PlatformConfig::mpsoc(25_000_000));
    assert_eq!(soc.ciphertexts.len(), 1);
    assert_eq!(mpsoc.ciphertexts.len(), 1);
    // Same demo key and plaintext on both platforms: identical ciphertext.
    assert_eq!(soc.ciphertexts[0], mpsoc.ciphertexts[0]);
}
