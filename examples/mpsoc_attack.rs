//! End-to-end MPSoC attack demonstration: runs the event-driven platform
//! simulation (7-core mesh NoC, shared L1) to show when the attacker can
//! probe, then mounts the key recovery under the conditions the platform
//! grants — the workflow behind the paper's Table II.
//!
//! ```text
//! cargo run -p grinch --release --example mpsoc_attack
//! ```

use gift_cipher::Key;
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::experiments::practical::probing_round_equivalent;
use grinch::oracle::{ObservationConfig, VictimOracle};
use soc_sim::platform::{PlatformConfig, PlatformKind};
use soc_sim::scenario::{run_mpsoc, run_single_soc};

fn main() {
    let secret = Key::from_u128(0x1357_9bdf_2468_ace0_0f1e_2d3c_4b5a_6978);

    for (kind, label) in [
        (PlatformKind::MpSoc, "MPSoC (7 cores, 3x3 mesh NoC)"),
        (
            PlatformKind::SingleSoc,
            "single-processor SoC (RTOS, 10 ms quantum)",
        ),
    ] {
        println!("== {label} ==");
        for freq in [10_000_000u64, 25_000_000, 50_000_000] {
            let report = match kind {
                PlatformKind::MpSoc => run_mpsoc(&PlatformConfig::mpsoc(freq)),
                PlatformKind::SingleSoc => run_single_soc(&PlatformConfig::single_soc(freq)),
            };
            let probed = report.first_probe_round();
            println!(
                "  {:>2} MHz: first probe lands in victim round {:?} ({} probes total)",
                freq / 1_000_000,
                probed,
                report.probes.len()
            );

            // Mount the logical attack at the probing round the platform
            // actually grants. The MPSoC's continuous per-round probing is
            // the ideal with-flush channel; the single SoC sees cumulative
            // accesses without a mid-encryption flush.
            if let Some(round) = probed {
                let k = probing_round_equivalent(round);
                let continuous = kind == PlatformKind::MpSoc;
                let obs = ObservationConfig::ideal()
                    .with_probing_round(k)
                    .with_flush(continuous);
                let mut oracle = VictimOracle::new(secret, obs);
                let mut config = AttackConfig::default();
                config.stage = config.stage.with_max_encryptions(150_000);
                let outcome = recover_full_key(&mut oracle, &config);
                match outcome.key {
                    Some(key) if key == secret => println!(
                        "         key recovered with {} encryptions",
                        outcome.encryptions
                    ),
                    _ => println!(
                        "         key NOT recovered within {} encryptions",
                        outcome.encryptions
                    ),
                }
            }
        }
        println!();
    }
}
