//! Cache geometry study: how line size changes the attack (the paper's
//! Table I), plus the effect of the probe mechanic (Flush+Reload versus
//! Prime+Probe) and of replacement policy.
//!
//! ```text
//! cargo run -p grinch --release --example cache_geometry_study
//! ```

use cache_sim::ReplacementPolicy;
use gift_cipher::Key;
use grinch::oracle::{ObservationConfig, ProbeStrategy, VictimOracle};
use grinch::stage::{run_stage, StageConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn first_round_effort(obs: ObservationConfig, seed: u64) -> (bool, u64) {
    let secret = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let mut oracle = VictimOracle::new(secret, obs);
    let cfg = StageConfig::new()
        .with_max_encryptions(300_000)
        .with_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = run_stage(&mut oracle, &[], 1, &cfg, &mut rng);
    (result.is_resolved(), result.encryptions)
}

fn main() {
    println!("First-round (32-bit) recovery effort vs cache geometry\n");

    println!("line size sweep (Flush+Reload, probing round 1, with flush):");
    for words in [1usize, 2, 4, 8] {
        let obs = ObservationConfig::ideal().with_words_per_line(words);
        let (ok, n) = first_round_effort(obs, 0x100 + words as u64);
        println!(
            "  {words} word(s)/line: {}",
            if ok {
                format!("{n} encryptions")
            } else {
                format!("unresolved after {n} encryptions")
            }
        );
    }

    println!("\nprobe mechanic (1 word/line, probing round 1):");
    for (name, strategy) in [
        ("Flush+Reload", ProbeStrategy::FlushReload),
        ("Prime+Probe", ProbeStrategy::PrimeProbe),
    ] {
        let obs = ObservationConfig {
            strategy,
            ..ObservationConfig::ideal()
        };
        let (ok, n) = first_round_effort(obs, 0x200);
        println!(
            "  {name}: {} ({n} encryptions)",
            if ok { "ok" } else { "failed" }
        );
    }

    println!("\nreplacement policy (1 word/line):");
    for (name, policy) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
    ] {
        let mut obs = ObservationConfig::ideal();
        obs.cache.replacement = policy;
        let (ok, n) = first_round_effort(obs, 0x300);
        println!(
            "  {name}: {} ({n} encryptions)",
            if ok { "ok" } else { "failed" }
        );
    }

    println!("\nWider lines blur the observed index and raise the effort (Table I).");
}
