//! Countermeasure demonstration: the two protections §IV-C of the GRINCH
//! paper proposes, shown blocking the attack while preserving functional
//! correctness.
//!
//! ```text
//! cargo run -p grinch --release --example countermeasures
//! ```

use gift_cipher::countermeasure::{masked_round_keys_64, WideLineGift64};
use gift_cipher::{Gift64, Key, RecordingObserver, TableLayout};
use grinch::experiments::countermeasures::{run, AblationConfig};

fn main() {
    let key = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);

    // Countermeasure 1: the reshaped S-box still computes GIFT-64 ...
    let protected = WideLineGift64::new(key, TableLayout::new(0x400));
    let reference = Gift64::new(key);
    let mut trace = RecordingObserver::new();
    let pt = 0xdead_beef_0bad_f00d;
    assert_eq!(
        protected.encrypt_with(pt, &mut trace),
        reference.encrypt(pt)
    );
    // ... but its whole table lives in 8 bytes = one cache line.
    let mut addrs = trace.sbox_addrs();
    addrs.sort_unstable();
    addrs.dedup();
    println!(
        "wide-line S-box: functionally identical, table spans {} distinct \
         byte addresses (one 8-byte line)",
        addrs.len()
    );

    // Countermeasure 2: the masked schedule changes the first four round
    // keys so index ⊕ input no longer equals raw key bits.
    let plain = Gift64::new(key);
    let masked = masked_round_keys_64(key);
    let differing = (0..4)
        .filter(|&r| plain.round_keys()[r] != masked[r])
        .count();
    println!("masked key schedule: {differing}/4 early round keys differ from the plain schedule");

    // Full ablation: attack each configuration.
    println!("\nrunning the four-stage attack against each configuration ...\n");
    let rows = run(&AblationConfig::default());
    println!(
        "{:>22} {:>14} {:>14}",
        "protection", "key recovered", "encryptions"
    );
    for row in rows {
        println!(
            "{:>22} {:>14} {:>14}",
            row.protection.to_string(),
            if row.key_recovered { "YES" } else { "no" },
            row.encryptions
        );
    }
    println!("\nOnly the unprotected table implementation leaks the key.");
}
