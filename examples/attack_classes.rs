//! The three cache-attack classes of the paper's introduction, side by
//! side against the same GIFT victim: time-driven (starves), trace-driven
//! (weak per-encryption signal), and access-driven (GRINCH — wins).
//!
//! ```text
//! cargo run -p grinch --release --example attack_classes
//! ```

use gift_cipher::Key;
use grinch::baselines::{time_driven, trace_driven};
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch::stage::{run_stage, StageConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let key = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);

    println!("== time-driven (Bernstein-style) ==");
    let spread = time_driven::relative_latency_spread(key, 128);
    println!(
        "relative latency spread over 128 plaintexts: {:.2}% — the 16-entry\n\
         S-box caches completely, so total time carries almost no signal\n",
        spread * 100.0
    );

    println!("== trace-driven ==");
    let pt = 0x0123_4567_89ab_cdef;
    let trace = trace_driven::round_trace(key, pt, 2);
    let misses = trace.iter().filter(|&&h| !h).count();
    println!(
        "round-2 hit/miss trace: {} misses / 16 accesses -> the trace reveals\n\
         only which S-box indices collide, never their values",
        misses
    );
    let entropy = trace_driven::partition_entropy_bits(key, 2, 256);
    println!("collision-partition entropy: {entropy:.1} bits per encryption\n");

    println!("== access-driven (GRINCH) ==");
    let mut oracle = VictimOracle::new(key, ObservationConfig::ideal());
    let mut rng = StdRng::seed_from_u64(1);
    let stage = run_stage(&mut oracle, &[], 1, &StageConfig::new(), &mut rng);
    println!(
        "stage 1 recovered 32 key bits in {} crafted encryptions\n\
         ({:.2} bits per encryption) — the class the paper builds GRINCH on",
        stage.encryptions,
        32.0 / stage.encryptions as f64
    );
}
