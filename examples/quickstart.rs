//! Quickstart: encrypt with GIFT, watch the cache leak, recover key bits.
//!
//! ```text
//! cargo run -p grinch --release --example quickstart
//! ```

use gift_cipher::{Gift64, Key};
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::oracle::{ObservationConfig, VictimOracle};

fn main() {
    // 1. The victim: GIFT-64 with a secret 128-bit key.
    let secret = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let cipher = Gift64::new(secret);
    let plaintext = 0x0123_4567_89ab_cdef;
    let ciphertext = cipher.encrypt(plaintext);
    println!("GIFT-64: {plaintext:016x} --[{secret}]--> {ciphertext:016x}");
    assert_eq!(cipher.decrypt(ciphertext), plaintext);

    // 2. The attack surface: a lookup-table implementation whose S-box
    //    accesses hit a shared cache, probed with Flush+Reload at the
    //    paper's ideal moment (probing round 1, with flush).
    let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());

    // 3. GRINCH: four stages, 32 key bits each.
    let outcome = recover_full_key(&mut oracle, &AttackConfig::default());

    match outcome.key {
        Some(key) => {
            println!("recovered key: {key}");
            println!("encryptions used: {}", outcome.encryptions);
            for (i, n) in outcome.stage_encryptions.iter().enumerate() {
                println!("  stage {} (round {}): {} encryptions", i + 1, i + 1, n);
            }
            assert_eq!(key, secret, "recovered key must match the secret");
            println!(
                "paper headline check: full key in < 400 encryptions reported; \
                 this run used {}",
                outcome.encryptions
            );
        }
        None => println!("attack failed (unexpected in the ideal setting)"),
    }
}
