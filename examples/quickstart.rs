//! Quickstart: encrypt with GIFT, watch the cache leak, recover key bits.
//!
//! ```text
//! cargo run -p grinch --release --example quickstart
//! ```
//!
//! The run is fully instrumented: a JSONL trace (counters, gauges,
//! histograms, nested attack-stage spans) lands in
//! `results/quickstart.telemetry.jsonl` and a summary table prints at the
//! end.

use gift_cipher::{Gift64, Key};
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch_telemetry::Telemetry;

fn main() {
    // 1. The victim: GIFT-64 with a secret 128-bit key.
    let secret = Key::from_u128(0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0);
    let cipher = Gift64::new(secret);
    let plaintext = 0x0123_4567_89ab_cdef;
    let ciphertext = cipher.encrypt(plaintext);
    println!("GIFT-64: {plaintext:016x} --[{secret}]--> {ciphertext:016x}");
    assert_eq!(cipher.decrypt(ciphertext), plaintext);

    // 2. The attack surface: a lookup-table implementation whose S-box
    //    accesses hit a shared cache, probed with Flush+Reload at the
    //    paper's ideal moment (probing round 1, with flush). Telemetry
    //    records every probe, cache event, and stage span —
    //    GRINCH_TELEMETRY=0 turns all of it off.
    let telemetry = Telemetry::from_env();
    if telemetry.is_enabled() {
        // Crash flight recorder: keep the last events in a ring and dump
        // them on panic, so a dead run leaves `grinch-report postmortem`
        // something to read.
        telemetry.enable_flight_recorder(grinch_telemetry::DEFAULT_FLIGHT_CAPACITY);
        telemetry.install_flight_dump_on_panic(
            "quickstart",
            grinch_obs::paths::results_dir().join("FLIGHT_quickstart.json"),
        );
    }
    if std::env::var("GRINCH_FORCE_PANIC").as_deref() == Ok("1") {
        // CI's flight-recorder drill: open a recognisable span stack, emit
        // a few events, and die mid-span. The panic hook must leave a
        // FLIGHT_quickstart.json whose postmortem resolves the innermost
        // open span to `attack.flight_test`.
        let _attack = telemetry.span("attack");
        let _stage = telemetry.span("attack.flight_test");
        telemetry.counter_add("attack.probes", 3);
        panic!("GRINCH_FORCE_PANIC=1: deliberate crash to exercise the flight recorder");
    }
    let mut oracle = VictimOracle::new(secret, ObservationConfig::ideal());
    oracle.set_telemetry(telemetry.clone());

    // 3. GRINCH: four stages, 32 key bits each. Wall-clock the recovery so
    //    the throughput of the fully instrumented attack lands in
    //    results/BENCH_quickstart.json (see EXPERIMENTS.md, "Measuring
    //    throughput"). A throwaway warm-up recovery on a fresh,
    //    un-instrumented oracle runs first so the timed figure measures the
    //    attack, not first-touch page faults and allocator cold start; the
    //    exported telemetry comes exclusively from the timed oracle, so the
    //    JSONL trace is unaffected.
    {
        let mut warmup = VictimOracle::new(secret, ObservationConfig::ideal());
        let _ = recover_full_key(&mut warmup, &AttackConfig::default());
    }
    let started = std::time::Instant::now();
    let outcome = recover_full_key(&mut oracle, &AttackConfig::default());
    let recovery_wall_ns = started.elapsed().as_nanos() as u64;

    match outcome.key {
        Some(key) => {
            println!("recovered key: {key}");
            println!("encryptions used: {}", outcome.encryptions);
            for (i, n) in outcome.stage_encryptions.iter().enumerate() {
                println!("  stage {} (round {}): {} encryptions", i + 1, i + 1, n);
            }
            assert_eq!(key, secret, "recovered key must match the secret");
            println!(
                "paper headline check: full key in < 400 encryptions reported; \
                 this run used {}",
                outcome.encryptions
            );
        }
        None => println!("attack failed (unexpected in the ideal setting)"),
    }

    // 4. What the telemetry saw.
    if !telemetry.is_enabled() {
        println!(
            "\ntelemetry disabled via {}; no trace, bench report or profile written",
            grinch_telemetry::TELEMETRY_ENV
        );
        return;
    }
    let snapshot = telemetry.snapshot();
    println!("\n--- telemetry ---");
    println!("probes issued: {}", snapshot.counter("attack.probes"));
    let hits = snapshot.counter("cache.l1.hits");
    let misses = snapshot.counter("cache.l1.misses");
    if hits + misses > 0 {
        println!(
            "L1 hit rate: {:.1}% ({hits} hits / {misses} misses)",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    print!("entropy remaining after each stage:");
    for stage in 1..=4 {
        if let Some(bits) = snapshot.gauge(&format!("attack.entropy_bits.stage{stage}")) {
            print!(" {bits:.0}");
        }
    }
    println!(" bits");
    println!("\n{}", telemetry.summary());

    let dir = grinch_obs::paths::results_dir();
    let path = dir.join("quickstart.telemetry.jsonl");
    match std::fs::create_dir_all(&dir).and_then(|()| telemetry.write_jsonl(&path)) {
        Ok(()) => println!(
            "telemetry trace: {} (try: grinch-report dashboard {0})",
            path.display()
        ),
        Err(e) => eprintln!("telemetry: write to {} failed: {e}", path.display()),
    }

    // 5. Span profile: the trace's span tree collapsed into per-stack self
    //    times (flamegraph-ready). Self times are a partition of the root
    //    span's duration — the totals must sum exactly.
    let profile = grinch_obs::SpanProfile::from_snapshot(&snapshot);
    assert_eq!(
        profile.total_self_ns(),
        profile.root_total_ns,
        "span self-times must partition the root span duration"
    );
    let folded_path = dir.join("PROFILE_quickstart.folded");
    match std::fs::write(&folded_path, profile.folded()) {
        Ok(()) => println!(
            "span profile: {} ({} stacks, {} simulated ns across roots; \
             try: grinch-report profile {})",
            folded_path.display(),
            profile.lines.len(),
            profile.root_total_ns,
            path.display()
        ),
        Err(e) => eprintln!("profile: write to {} failed: {e}", folded_path.display()),
    }

    // 6. Wall-clock record: the telemetry-enabled recovery throughput, in
    //    encryptions per second. Never gated — grinch-report compares
    //    metrics only — but tracked so optimisation work stays honest.
    let mut report = grinch_obs::BenchReport::from_snapshot("quickstart", &snapshot);
    report.push_wall(
        grinch_obs::WallSection::new("recovery", recovery_wall_ns, outcome.encryptions as f64)
            .with_rate("encryptions/sec"),
    );
    report.push_wall(
        grinch_obs::WallSection::new("recoveries", recovery_wall_ns, 1.0)
            .with_rate("recoveries/sec"),
    );
    let bench_path = dir.join("BENCH_quickstart.json");
    match std::fs::write(&bench_path, report.to_json()) {
        Ok(()) => {
            let secs = recovery_wall_ns as f64 / 1e9;
            println!(
                "wall clock: recovered in {:.2} ms ({:.0} encryptions/s) -> {}",
                secs * 1e3,
                outcome.encryptions as f64 / secs,
                bench_path.display()
            );
        }
        Err(e) => eprintln!(
            "bench report: write to {} failed: {e}",
            bench_path.display()
        ),
    }

    // 7. One `grinch-run/v1` record into the append-only run ledger — the
    //    longitudinal history behind `grinch-report regress` and
    //    `grinch-report trend`. GRINCH_LEDGER=0 opts out.
    if let Some(ledger_path) = grinch_obs::history::append_run(&report, Some(&profile), None) {
        println!(
            "run ledger: {} (try: grinch-report trend)",
            ledger_path.display()
        );
    }
}
