//! GRINCH against GIFT-128: two stages recover the full 128-bit key
//! (rounds 1 and 2 of GIFT-128 consume all eight key words).
//!
//! ```text
//! cargo run -p grinch --release --example gift128_attack
//! ```

use gift_cipher::{Gift128, Key};
use grinch::gift128::{recover_full_key_128, VictimOracle128};
use grinch::oracle::ObservationConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let secret = Key::from_u128(0x0bad_c0de_1337_beef_2468_ace0_1357_9bdf);
    let cipher = Gift128::new(secret);
    let pt = 0x0011_2233_4455_6677_8899_aabb_ccdd_eeffu128;
    println!("GIFT-128: {pt:032x}");
    println!("      --> {:032x}\n", cipher.encrypt(pt));

    let mut oracle = VictimOracle128::new(secret, ObservationConfig::ideal());
    let mut rng = StdRng::seed_from_u64(0x128);
    let outcome = recover_full_key_128(&mut oracle, 1_000_000, &mut rng);

    match outcome.key {
        Some(key) => {
            assert_eq!(key, secret);
            println!("recovered key: {key}");
            println!("encryptions used: {}", outcome.encryptions);
            for (i, n) in outcome.stage_encryptions.iter().enumerate() {
                println!("  stage {}: {} encryptions (64 key bits)", i + 1, n);
            }
            println!(
                "\nGIFT-128 falls in TWO stages (64 key bits per round) versus \
                 GIFT-64's four — wider state, same table leak."
            );
        }
        None => println!("attack failed (unexpected in the ideal setting)"),
    }
}
