//! Full 128-bit key recovery across a range of probing conditions,
//! demonstrating how the probing moment changes attack effort (the story
//! of the paper's Fig. 3 told through the complete four-stage attack).
//!
//! ```text
//! cargo run -p grinch --release --example full_key_recovery
//! ```

use gift_cipher::Key;
use grinch::attack::{recover_full_key, AttackConfig};
use grinch::oracle::{ObservationConfig, VictimOracle};
use grinch::stage::StageConfig;

fn main() {
    let secret = Key::from_u128(0x00ff_11ee_22dd_33cc_44bb_55aa_6699_7788);

    println!("GRINCH full-key recovery vs probing conditions");
    println!("secret key: {secret}\n");
    println!(
        "{:>13} {:>7} {:>10} {:>14}",
        "probing round", "flush", "recovered", "encryptions"
    );

    for (probing_round, flush) in [(1usize, true), (1, false), (2, true), (3, true)] {
        let obs = ObservationConfig::ideal()
            .with_probing_round(probing_round)
            .with_flush(flush);
        let mut oracle = VictimOracle::new(secret, obs);
        let config = AttackConfig {
            stage: StageConfig::new().with_max_encryptions(200_000),
            ..AttackConfig::default()
        };
        let outcome = recover_full_key(&mut oracle, &config);
        println!(
            "{:>13} {:>7} {:>10} {:>14}",
            probing_round,
            if flush { "yes" } else { "no" },
            match outcome.key {
                Some(k) if k == secret => "YES",
                Some(_) => "WRONG",
                None => "no",
            },
            outcome.encryptions
        );
    }

    println!("\nEarlier probing and flushing make the attack cheaper, as in Fig. 3.");
}
