//! GRINCH against an AEAD built on GIFT-128 (COFB-style) — the scenario
//! the paper's introduction motivates: GIFT is attacked *inside* a NIST-LWC
//! style authenticated cipher, not as a bare block cipher.
//!
//! Every `seal` starts with `E_K(nonce)` on an attacker-chosen 128-bit
//! nonce, so the chosen-plaintext channel GRINCH needs is available through
//! the AEAD's public interface. The attacker crafts *nonces*, watches the
//! shared cache during the first internal block encryption, recovers the
//! key in two stages, and finally forges by decrypting a sealed message.
//!
//! ```text
//! cargo run -p grinch --release --example aead_attack
//! ```

use gift_cipher::aead::GiftCofb;
use gift_cipher::Key;
use grinch::gift128::{recover_full_key_128, VictimOracle128};
use grinch::oracle::ObservationConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let secret = Key::from_u128(0x5eed_f00d_5eed_f00d_0123_4567_89ab_cdef);
    let aead = GiftCofb::new(secret);

    // The victim seals a message the attacker would like to read.
    let nonce = 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128;
    let (ciphertext, tag) = aead.seal(nonce, b"session-42", b"launch code: 0000");
    println!(
        "victim sealed {} bytes, tag {:016x}",
        ciphertext.len(),
        tag.0
    );

    // The cache side channel: each seal's first internal call is
    // E_K(nonce). The oracle models exactly that call's S-box traffic (the
    // probe fires during its early rounds, before any later block runs).
    let mut oracle = VictimOracle128::new(secret, ObservationConfig::ideal());
    let mut rng = StdRng::seed_from_u64(0xaead);
    let outcome = recover_full_key_128(&mut oracle, 1_000_000, &mut rng);

    let key = outcome
        .key
        .expect("recovery should succeed in the ideal setting");
    println!(
        "key recovered from {} crafted nonce encryptions: {key}",
        outcome.encryptions
    );
    assert_eq!(key, secret);

    // With the key, the attacker opens the victim's message.
    let cracked = GiftCofb::new(key)
        .open(nonce, b"session-42", &ciphertext, tag)
        .expect("recovered key must authenticate");
    println!("decrypted: {}", String::from_utf8_lossy(&cracked));
    assert_eq!(cracked, b"launch code: 0000");
}
